"""Tests for offline race detection on annotated 2D lattices.

Key property: offline, Theorem 1 gives *exact* suprema, so the detector
flags exactly the accesses that race with some earlier conflicting
access -- checked against a brute-force pairwise oracle on random
lattices with random annotations.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import AccessKind
from repro.detectors.offline2d import detect_races_on_lattice, visit_order
from repro.errors import NotATwoDimensionalLattice
from repro.lattice.digraph import Digraph
from repro.lattice.generators import (
    boolean_lattice,
    figure2_lattice,
    grid_diagram,
    grid_digraph,
)
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices


def brute_force_flagged(graph, accesses):
    """All (vertex, loc) whose access races with an earlier one.

    "Earlier" means earlier in the detector's own visit order; within
    one vertex, annotations in list order.  Two accesses of the *same*
    vertex never race (they are ordered by program order).
    """
    poset = Poset(graph)
    order = {v: i for i, v in enumerate(visit_order(graph))}
    flat: List[Tuple[Hashable, Hashable, AccessKind]] = []
    for v in sorted(accesses, key=lambda v: order[v]):
        for loc, kind in accesses[v]:
            flat.append((v, loc, kind))
    flagged = set()
    for j in range(len(flat)):
        v2, loc2, k2 = flat[j]
        for i in range(j):
            v1, loc1, k1 = flat[i]
            if loc1 != loc2 or v1 == v2:
                continue
            if not k1.conflicts_with(k2):
                continue
            if not poset.comparable(v1, v2):
                flagged.add((v2, loc2))
    return flagged


def random_accesses(graph, rng, n_locations=3, p=0.7):
    accesses: Dict[Hashable, List[Tuple[Hashable, AccessKind]]] = {}
    for v in graph.vertices():
        if rng.random() < p:
            k = AccessKind.WRITE if rng.random() < 0.5 else AccessKind.READ
            accesses.setdefault(v, []).append(
                (rng.randrange(n_locations), k)
            )
    return accesses


class TestFigure2:
    def test_docstring_example(self):
        accesses = {
            "A": [("l", AccessKind.READ)],
            "B": [("l", AccessKind.READ)],
            "D": [("l", AccessKind.WRITE)],
        }
        reports = detect_races_on_lattice(figure2_lattice(), accesses)
        # Exactly the A-D race, flagged at whichever endpoint the
        # traversal visits second (orientation-dependent).  The prior
        # representative is a supremum and need not access the location
        # itself (Section 2.3: sup{A, B} = C in Figure 2).
        assert len(reports) == 1
        assert reports[0].loc == "l"
        assert reports[0].vertex in {"A", "D"}
        assert reports[0].kind.conflicts_with(reports[0].prior_kind)

    def test_visit_order_is_a_linear_extension(self):
        graph = figure2_lattice()
        poset = Poset(graph)
        order = visit_order(graph)
        pos = {v: i for i, v in enumerate(order)}
        for x in order:
            for y in order:
                if poset.lt(x, y):
                    assert pos[x] < pos[y]

    def test_race_free_annotation(self):
        accesses = {
            "B": [("l", AccessKind.READ)],
            "D": [("l", AccessKind.WRITE)],  # B ⊑ D: ordered
        }
        assert detect_races_on_lattice(figure2_lattice(), accesses) == []


class TestExactness:
    @settings(max_examples=60, deadline=None)
    @given(graph=two_dim_lattices(), seed=st.integers(0, 2**32 - 1))
    def test_flags_exactly_the_racing_accesses(self, graph, seed):
        rng = random.Random(seed)
        accesses = random_accesses(graph, rng)
        reports = detect_races_on_lattice(graph, accesses)
        got = {(r.vertex, r.loc) for r in reports}
        assert got == brute_force_flagged(graph, accesses)

    def test_multiple_accesses_per_vertex(self):
        g = grid_digraph(2, 2)
        accesses = {
            (0, 1): [("x", AccessKind.WRITE), ("y", AccessKind.READ)],
            (1, 0): [("x", AccessKind.WRITE), ("y", AccessKind.WRITE)],
        }
        reports = detect_races_on_lattice(g, accesses)
        assert {(r.vertex, r.loc) for r in reports} == {
            ((1, 0), "x"), ((1, 0), "y"),
        }

    def test_same_vertex_accesses_never_race(self):
        g = grid_digraph(1, 2)
        accesses = {
            (0, 0): [("x", AccessKind.WRITE), ("x", AccessKind.WRITE)],
        }
        assert detect_races_on_lattice(g, accesses) == []


class TestInputs:
    def test_prebuilt_diagram_fast_path(self):
        d = grid_diagram(3, 3)
        accesses = {
            (0, 1): [("x", AccessKind.WRITE)],
            (1, 0): [("x", AccessKind.WRITE)],
        }
        reports = detect_races_on_lattice(d.graph, accesses, diagram=d)
        assert len(reports) == 1

    def test_non_2d_input_rejected(self):
        with pytest.raises(NotATwoDimensionalLattice):
            detect_races_on_lattice(boolean_lattice(3), {})

    def test_unannotated_graph_is_silent(self):
        assert detect_races_on_lattice(grid_digraph(3, 3), {}) == []
