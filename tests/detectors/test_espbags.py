"""Unit tests for the ESP-bags baseline (async-finish programs only)."""

from __future__ import annotations

import pytest

from repro.detectors import ESPBagsDetector, Lattice2DDetector
from repro.errors import DetectorError
from repro.forkjoin import read, run, write
from repro.forkjoin.async_finish import x10


def drive(body):
    det = ESPBagsDetector()
    run(body, observers=[det])
    return det


class TestScopeSemantics:
    def test_async_parallel_inside_finish(self):
        def worker(ctx):
            yield write("x", label="async-write")

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(worker)
                yield write("x", label="block-write")  # parallel: race

            yield from ctx.finish(block)

        det = drive(main)
        assert len(det.races) == 1
        assert det.races[0].label == "block-write"

    def test_finish_end_serialises(self):
        def worker(ctx):
            yield write("x")

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(worker)

            yield from ctx.finish(block)
            yield read("x")
            yield write("x")

        assert drive(main).races == []

    def test_escaped_async_stays_parallel_until_outer_finish(self):
        def escapee(ctx):
            yield write("x", label="escaped-write")

        def spawner(ctx):
            yield from ctx.async_(escapee)
            yield read(("own", 0))

        @x10
        def main(ctx):
            def inner():
                yield from ctx.async_(spawner)

            # inner finish joins `spawner` but NOT the escapee, which
            # registered with... the *inner* finish? No: escapee was
            # created by spawner, whose innermost enclosing finish at
            # creation is `inner`, so it is joined by inner's end too.
            yield from ctx.finish(inner)
            yield read("x")

        assert drive(main).races == []

    def test_escape_to_root_finish(self):
        def escapee(ctx):
            yield write("x", label="escaped")

        def spawner(ctx):
            yield from ctx.async_(escapee)

        @x10
        def main(ctx):
            yield from ctx.async_(spawner)  # governed by root finish
            yield read("x", label="racy-read")  # escapee parallel: race

        det = drive(main)
        assert len(det.races) == 1
        assert det.races[0].label == "racy-read"

    def test_sibling_asyncs_race(self):
        def worker(ctx, tag):
            yield write("x", label=tag)

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(worker, "a")
                yield from ctx.async_(worker, "b")

            yield from ctx.finish(block)

        det = drive(main)
        assert [r.label for r in det.races] == ["b"]

    def test_nested_finish_scopes(self):
        def worker(ctx):
            yield write("x")

        @x10
        def main(ctx):
            def inner():
                yield from ctx.async_(worker)

            def outer():
                yield from ctx.finish(inner)
                yield read("x")  # ordered by the inner finish

            yield from ctx.finish(outer)

        assert drive(main).races == []


class TestAgreementWithLattice2D:
    def test_agreement_on_mixed_program(self):
        def worker(ctx, i):
            yield write(("slot", i))
            yield read("config")

        @x10
        def main(ctx):
            yield write("config")

            def block():
                for i in range(4):
                    yield from ctx.async_(worker, i)

            yield from ctx.finish(block)
            for i in range(4):
                yield read(("slot", i))

        esp = ESPBagsDetector()
        l2 = Lattice2DDetector()
        run(main, observers=[esp, l2])
        assert esp.races == [] and l2.races == []
        assert esp.shadow_peak_per_location() <= 2
        assert l2.shadow_peak_per_location() <= 2


class TestErrors:
    def test_plain_forkjoin_program_rejected(self):
        from repro.forkjoin import fork, join as join_

        def child(self):
            yield write("x")

        def main(self):
            c = yield fork(child)  # no finish scope anywhere
            yield join_(c)

        det = ESPBagsDetector()
        with pytest.raises(DetectorError, match="@x10"):
            run(main, observers=[det])
