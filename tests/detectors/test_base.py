"""Tests for the detector interface plumbing and trivial observers."""

from __future__ import annotations

import pytest

from repro.detectors.base import Detector, EventTracer, NullObserver
from repro.forkjoin import fork, join, read, run, write


def tiny_program(self):
    c = yield fork(child_body)
    yield read("x")
    yield join(c)


def child_body(self):
    yield write("x")


class TestNullObserver:
    def test_accepts_full_stream(self):
        run(tiny_program, observers=[NullObserver()])


class TestEventTracer:
    def test_trace_shape(self):
        tracer = EventTracer()
        run(tiny_program, observers=[tracer])
        assert tracer.trace[0] == "root 0"
        assert tracer.trace[-1] == "halt 0"
        assert any(t.startswith("fork") for t in tracer.trace)


class TestFactoryRegistry:
    def test_all_factories_build_working_detectors(self):
        from repro.bench.harness import DETECTOR_FACTORIES

        for name, factory in DETECTOR_FACTORIES.items():
            det = factory()
            assert det.name == name
            assert isinstance(det, Detector)
            assert det.races == []

    def test_generic_detectors_run_the_stream(self):
        from repro.bench.harness import DETECTOR_FACTORIES

        for name in ("lattice2d", "vectorclock", "fasttrack", "naive"):
            det = DETECTOR_FACTORIES[name]()
            run(tiny_program, observers=[det])
            assert det.found_race(), name
            assert det.race_count == len(det.races)
            assert det.shadow_peak_per_location() >= 1
            assert det.shadow_total_entries() >= 1
            assert det.metadata_entries() >= 0
