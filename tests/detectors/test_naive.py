"""Unit tests for the naive set-tracking detector."""

from __future__ import annotations

from repro.core.reports import AccessKind
from repro.detectors.naive import NaiveDetector


def fresh():
    d = NaiveDetector()
    d.on_root(0)
    return d


class TestRaces:
    def test_parallel_writes(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_write(0, "x")
        assert len(d.races) == 1

    def test_join_orders(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_join(0, 1)
        d.on_write(0, "x")
        assert d.races == []

    def test_one_report_per_access(self):
        """Three parallel prior writes: the fourth flags once."""
        d = fresh()
        kids = []
        for i in range(1, 4):
            d.on_fork(0, i)
            d.on_write(i, "x")
            d.on_halt(i)
            kids.append(i)
        before = len(d.races)  # siblings raced among themselves
        d.on_write(0, "x")
        assert len(d.races) == before + 1

    def test_read_read_silent(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_read(1, "x")
        d.on_halt(1)
        d.on_read(0, "x")
        assert d.races == []


class TestSpaceBehaviour:
    def test_shadow_grows_with_accesses(self):
        """The O(|R ∪ W|) blow-up the paper's reduction eliminates."""
        d = fresh()
        for _ in range(25):
            d.on_read(0, "x")
        assert d.shadow_peak_per_location() >= 25

    def test_metadata_is_whole_dag(self):
        d = fresh()
        for _ in range(10):
            d.on_step(0)
        assert d.metadata_entries() >= 10
