"""Unit tests for the DJIT+-style vector-clock detector."""

from __future__ import annotations

import pytest

from repro.core.reports import AccessKind
from repro.detectors.vector_clock import VectorClockDetector
from repro.errors import DetectorError


def fresh():
    d = VectorClockDetector()
    d.on_root(0)
    return d


class TestClockDiscipline:
    def test_fork_gives_child_fresh_component(self):
        d = fresh()
        d.on_fork(0, 1)
        assert d._clocks[1] == {0: 1, 1: 1}
        assert d._clocks[0] == {0: 2}  # parent advanced

    def test_join_absorbs_and_advances(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_join(0, 1)
        assert d._clocks[0][1] >= 1  # absorbed child's component
        assert 1 not in d._clocks  # joined clock freed

    def test_double_join_rejected(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_halt(1)
        d.on_join(0, 1)
        with pytest.raises(DetectorError):
            d.on_join(0, 1)

    def test_unknown_task_rejected(self):
        d = fresh()
        with pytest.raises(DetectorError, match="unknown"):
            d.on_read(5, "x")


class TestRaces:
    def test_parallel_writes_race(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_write(0, "x")
        assert len(d.races) == 1
        assert d.races[0].prior_kind is AccessKind.WRITE
        assert d.races[0].prior_repr == 1

    def test_join_orders(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_join(0, 1)
        d.on_write(0, "x")
        assert d.races == []

    def test_read_read_not_a_race(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_read(1, "x")
        d.on_halt(1)
        d.on_read(0, "x")
        assert d.races == []

    def test_write_read_race_names_writer(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_read(0, "x")
        assert d.races[0].kind is AccessKind.READ
        assert d.races[0].prior_repr == 1


class TestSpaceGrowth:
    def test_read_vector_grows_linearly_with_readers(self):
        """The Θ(n)-per-location behaviour the paper criticises."""
        d = fresh()
        d.on_write(0, "cfg")
        children = []
        for i in range(1, 21):
            d.on_fork(0, i)
            d.on_read(i, "cfg")
            d.on_halt(i)
            children.append(i)
        assert d.races == []
        assert d.shadow_peak_per_location() >= 20
        for c in reversed(children):
            d.on_join(0, c)

    def test_metadata_shrinks_after_joins(self):
        d = fresh()
        for i in range(1, 6):
            d.on_fork(0, i)
            d.on_halt(i)
        before = d.metadata_entries()
        for i in range(5, 0, -1):
            d.on_join(0, i)
        assert d.metadata_entries() < before
