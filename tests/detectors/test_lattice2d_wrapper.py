"""Focused tests for the Lattice2DDetector harness wrapper."""

from __future__ import annotations

import pytest

from repro.core.detector import RaceDetector2D
from repro.detectors import Lattice2DDetector
from repro.detectors.base import Detector
from repro.forkjoin import fork, join, read, run, write


def program(self):
    c = yield fork(child)
    yield read("x")
    yield join(c)


def child(self):
    yield write("x")


class TestWrapper:
    def test_is_a_detector(self):
        assert isinstance(Lattice2DDetector(), Detector)

    def test_shares_race_list_with_engine(self):
        det = Lattice2DDetector()
        run(program, observers=[det])
        assert det.races is det.engine.races
        assert det.race_count == 1

    def test_engine_kwargs_forwarded(self):
        det = Lattice2DDetector(paper_figure6_literal=True)
        assert det.engine._literal
        det2 = Lattice2DDetector(path_compression=False)
        assert not det2.engine.unionfind.path_compression

    def test_shadow_property_delegates(self):
        det = Lattice2DDetector()
        run(program, observers=[det])
        assert det.shadow is det.engine.shadow
        assert len(det.shadow) == 1

    def test_accounting_delegates(self):
        det = Lattice2DDetector()
        run(program, observers=[det])
        assert det.shadow_peak_per_location() == \
            det.engine.shadow.peak_entries_per_loc
        assert det.metadata_entries() == 6 * det.engine.thread_count

    def test_step_events_forwarded(self):
        from repro.forkjoin import step

        def stepper(self):
            yield step()
            yield step()

        det = Lattice2DDetector()
        run(stepper, observers=[det])
        assert det.engine.op_index == 3  # 2 steps + halt

    def test_engine_usable_standalone(self):
        """The engine is the public API; the wrapper adds only plumbing."""
        eng = RaceDetector2D()
        root = eng.spawn_root()
        c = eng.on_fork(root)
        eng.on_write(c, "x")
        eng.on_halt(c)
        eng.on_write(root, "x")
        assert len(eng.races) == 1
