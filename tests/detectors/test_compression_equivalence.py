"""Property test for equation (9): thread compression is lossless.

Section 4's transformation (8) replaces vertices by thread ids, and
equation (9) claims every ordering comparison the detector makes is
preserved: ``Sup(x, t) = t  iff  Sup(tid(x), tid(t)) = tid(t)``.

For random structured programs we run the detector's compressed engine
and, event by event, compare the verdict of its ``ordered`` query with
the ground-truth happened-before relation from the reconstructed
operation-level task graph -- i.e. both sides of (9) against the order
itself, for every pair the detector could be asked about.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import RaceDetector2D
from repro.events import (
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.forkjoin import build_task_graph, run
from repro.workloads.synthetic import SyntheticConfig, random_program


def replay_with_checks(events, tg):
    """Feed the stream to the compressed detector; after every event,
    check ``detector.ordered(x, current)`` against the true order for
    every *visited* thread x versus the current thread's latest op."""
    det = RaceDetector2D()
    det.spawn_root()
    last_op = {}
    halted = set()
    mismatches = []

    def check(current_task, current_vertex):
        for x, vx in last_op.items():
            if x == current_task:
                continue
            # The detector may be queried about any thread whose ops
            # are recorded in shadow state -- i.e. visited ones.
            got = det.ordered(x, current_task)
            true = tg.poset.leq(vx, current_vertex)
            if got != true:
                mismatches.append((x, current_task, got, true))

    for i, ev in enumerate(events):
        if isinstance(ev, ForkEvent):
            det.on_fork(ev.parent, ev.child)
            last_op[ev.parent] = i
            check(ev.parent, i)
        elif isinstance(ev, JoinEvent):
            det.on_join(ev.joiner, ev.joined)
            last_op[ev.joiner] = i
            check(ev.joiner, i)
        elif isinstance(ev, HaltEvent):
            det.on_halt(ev.task)
            halted.add(ev.task)
            last_op[ev.task] = i
        elif isinstance(ev, (ReadEvent, WriteEvent, StepEvent)):
            t = ev.task
            if isinstance(ev, ReadEvent):
                det.on_read(t, ev.loc)
            elif isinstance(ev, WriteEvent):
                det.on_write(t, ev.loc)
            else:
                det.on_step(t)
            last_op[t] = i
            check(t, i)
    return mismatches


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_equation_9_on_random_programs(seed):
    cfg = SyntheticConfig(seed=seed, max_tasks=12, ops_per_task=5)
    ex = run(random_program(cfg), record_events=True)
    tg = build_task_graph(ex.events)
    mismatches = replay_with_checks(ex.events, tg)
    assert not mismatches, mismatches[:5]


def test_equation_9_on_figure2():
    from repro.forkjoin import fork, join, read, step, write

    def task_a(self):
        yield read("l")

    def task_c(self, a):
        yield join(a)
        yield step()

    def main(self):
        a = yield fork(task_a)
        yield read("l")
        c = yield fork(task_c, a)
        yield write("l")
        yield join(c)

    ex = run(main, record_events=True)
    tg = build_task_graph(ex.events)
    assert replay_with_checks(ex.events, tg) == []
