"""Adversarial tests for the SHB prediction detector.

Three fronts, matching the three ways prediction goes wrong:

* **Completeness against the observed-order detectors**: hand-built
  traces with a feasibly-reorderable race that the supremum-folding
  detectors (lattice2d *and* fasttrack) provably miss -- prediction
  must find it.
* **Soundness**: pairs ordered by fork/join edges (directly or
  transitively) must never be reported, no matter how the trace
  interleaves other work between them.
* **Hostile streams**: malformed input raises the family's typed
  errors at the exact ``op_index``, and a batch carrying an unknown
  opcode is rejected *whole* before any row reaches the candidate-pair
  window (the ``counts()``/``access_count()`` reconciliation in the
  predict ingest path).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.reports import AccessKind
from repro.detectors.fasttrack import FastTrackDetector
from repro.detectors.shb import SHBDetector
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_WRITE,
    EventBatch,
)
from repro.engine.ingest import BatchEngine
from repro.errors import DetectorError, ProgramError

pytestmark = pytest.mark.predict

X = 0  # the shared location, as a dense interned id


def make_batch(events) -> EventBatch:
    batch = EventBatch()
    for op, a, b in events:
        batch.ops.append(op)
        batch.a.append(a)
        batch.b.append(b)
    return batch


def drive(det, events) -> None:
    for op, a, b in events:
        if op == OP_READ:
            det.on_read(a, b)
        elif op == OP_WRITE:
            det.on_write(a, b)
        elif op == OP_FORK:
            det.on_fork(a, b)
        elif op == OP_JOIN:
            det.on_join(a, b)
        elif op == OP_HALT:
            det.on_halt(a)


def pairs(races):
    """The reported (accessor, partner) pairs."""
    return Counter((r.task, r.prior_repr) for r in races)


def flags(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


#: A structured (but not fork-first) trace where tasks 1 and 3 both
#: write ``X`` while mutually unordered -- a race feasible in any
#: reordering that runs task 1 late -- yet *no* observed-order
#: detector reports the pair: lattice2d's racing write keeps the old
#: supremum (task 1 is discarded at its own racing write), and
#: fasttrack's write epoch is overwritten by task 0's write before
#: task 3 ever runs.  Both end up comparing task 3 against task 0,
#: which is ordered, and stay silent.
REORDERING_TRACE = [
    (OP_FORK, 0, 1),
    (OP_FORK, 0, 2),
    (OP_WRITE, 2, X),
    (OP_HALT, 2, -1),
    (OP_WRITE, 1, X),   # races task 2's write; every detector sees this
    (OP_HALT, 1, -1),
    (OP_JOIN, 0, 2),
    (OP_WRITE, 0, X),   # races task 1 (unjoined); lattice2d misses it
    (OP_FORK, 0, 3),
    (OP_WRITE, 3, X),   # races task 1; ONLY prediction sees this pair
    (OP_HALT, 3, -1),
    (OP_JOIN, 0, 3),
    (OP_JOIN, 0, 1),
    (OP_HALT, 0, -1),
]


class TestPredictionCompleteness:
    def test_finds_the_pair_every_observed_detector_misses(self):
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, REORDERING_TRACE)
        assert pairs(shb.races) == Counter(
            {(1, 2): 1, (0, 1): 1, (3, 1): 1}
        )

    def test_lattice2d_and_fasttrack_miss_it(self):
        """Pin the gap: the engines' own detectors stay silent on the
        (3, 1) pair -- if one ever learns to see it, this documents
        that prediction stopped being strictly stronger here."""
        observed = BatchEngine()
        observed.ingest(make_batch(REORDERING_TRACE))
        assert (3, X, AccessKind.WRITE) not in flags(observed.races())

        ft = FastTrackDetector()
        ft.on_root(0)
        drive(ft, REORDERING_TRACE)
        assert (3, X, AccessKind.WRITE) not in flags(ft.races)

    def test_predicted_multiset_covers_both(self):
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, REORDERING_TRACE)
        predicted = flags(shb.races)

        observed = BatchEngine()
        observed.ingest(make_batch(REORDERING_TRACE))
        assert flags(observed.races()) <= predicted

        ft = FastTrackDetector()
        ft.on_root(0)
        drive(ft, REORDERING_TRACE)
        assert flags(ft.races) <= predicted

    def test_one_report_per_racing_pair(self):
        """Two halted-unjoined readers, then a write: the observed
        detectors keep one read supremum and report the write once;
        prediction enumerates both pairs."""
        trace = [
            (OP_FORK, 0, 1),
            (OP_READ, 1, X),
            (OP_HALT, 1, -1),
            (OP_FORK, 0, 2),
            (OP_READ, 2, X),
            (OP_HALT, 2, -1),
            (OP_WRITE, 0, X),
            (OP_JOIN, 0, 1),
            (OP_JOIN, 0, 2),
            (OP_HALT, 0, -1),
        ]
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, trace)
        assert pairs(shb.races) == Counter({(0, 1): 1, (0, 2): 1})

        observed = BatchEngine()
        observed.ingest(make_batch(trace))
        assert len(observed.races()) == 1
        assert flags(observed.races()) <= flags(shb.races)


class TestPredictionSoundness:
    def test_join_ordered_pair_is_infeasible(self):
        """The write pair (1, then 0-after-join) is ordered in *every*
        reordering -- prediction must stay silent."""
        trace = [
            (OP_FORK, 0, 1),
            (OP_WRITE, 1, X),
            (OP_HALT, 1, -1),
            (OP_JOIN, 0, 1),
            (OP_WRITE, 0, X),
            (OP_HALT, 0, -1),
        ]
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, trace)
        assert shb.races == []

    def test_transitive_order_through_fork_after_join(self):
        """Task 2 inherits the join edge at its fork: 1's write
        happens-before 2's in every feasible schedule."""
        trace = [
            (OP_FORK, 0, 1),
            (OP_WRITE, 1, X),
            (OP_HALT, 1, -1),
            (OP_JOIN, 0, 1),
            (OP_FORK, 0, 2),
            (OP_WRITE, 2, X),
            (OP_HALT, 2, -1),
            (OP_JOIN, 0, 2),
            (OP_HALT, 0, -1),
        ]
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, trace)
        assert shb.races == []

    def test_parent_prefix_precedes_child(self):
        trace = [
            (OP_WRITE, 0, X),
            (OP_FORK, 0, 1),
            (OP_WRITE, 1, X),
            (OP_HALT, 1, -1),
            (OP_JOIN, 0, 1),
            (OP_HALT, 0, -1),
        ]
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, trace)
        assert shb.races == []

    def test_same_task_never_races_itself(self):
        shb = SHBDetector()
        shb.on_root(0)
        drive(shb, [(OP_WRITE, 0, X), (OP_WRITE, 0, X), (OP_READ, 0, X)])
        assert shb.races == []


class TestHostileStreams:
    def _after_prefix(self):
        """A detector three events in (fork, child write, child halt)."""
        det = SHBDetector()
        det.on_root(0)
        drive(det, [(OP_FORK, 0, 1), (OP_WRITE, 1, X), (OP_HALT, 1, -1)])
        assert det.op_index == 3
        return det

    def test_unknown_thread_id_at_exact_op_index(self):
        det = self._after_prefix()
        with pytest.raises(DetectorError, match="unknown thread id 5"):
            det.on_read(5, X)
        assert det.op_index == 3  # the bad event was never counted

    def test_halted_thread_at_exact_op_index(self):
        det = self._after_prefix()
        with pytest.raises(DetectorError, match="thread 1 already halted"):
            det.on_write(1, X)
        assert det.op_index == 3

    def test_joining_running_thread(self):
        det = SHBDetector()
        det.on_root(0)
        det.on_fork(0, 1)
        with pytest.raises(DetectorError, match="joining running thread 1"):
            det.on_join(0, 1)
        assert det.op_index == 1

    def test_double_join(self):
        det = self._after_prefix()
        det.on_join(0, 1)
        with pytest.raises(DetectorError, match="thread 1 joined twice"):
            det.on_join(0, 1)
        assert det.op_index == 4

    def test_fork_id_mismatch(self):
        det = SHBDetector()
        det.on_root(0)
        with pytest.raises(DetectorError, match="fork id mismatch"):
            det.on_fork(0, 7)

    def test_root_id_mismatch(self):
        with pytest.raises(DetectorError, match="root id mismatch"):
            SHBDetector().on_root(3)

    def test_bad_opcode_rejects_the_whole_batch(self):
        """Valid-prefix-then-bad-row: the predict ingest path must
        reconcile the batch's counts up front and reject it atomically
        -- no prefix row may have reached the window."""
        batch = make_batch(
            [(OP_FORK, 0, 1), (OP_WRITE, 1, X), (9, 1, X)]
        )
        assert batch.counts().get("unknown") == 1
        engine = BatchEngine(predict=True)
        with pytest.raises(
            ProgramError, match="unknown opcode 9 at batch row 2"
        ):
            engine.ingest(batch)
        det = engine.detector
        assert det.op_index == 0
        assert det.races == []
        assert det.shadow_total_entries() == 0
        assert det.thread_count == 1  # only the root; the fork never ran

    def test_predict_excludes_detector_and_backend(self):
        with pytest.raises(ProgramError, match="predict"):
            BatchEngine(SHBDetector(), predict=True)
        with pytest.raises(ProgramError, match="predict"):
            BatchEngine(backend="depa", predict=True)
