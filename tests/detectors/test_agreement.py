"""The central correctness experiment: all detectors vs the exact oracle.

For randomly generated programs we check, per detector:

* **soundness** -- the detector reports a race iff the oracle finds a
  racing pair (the guarantee of Section 2.3);
* **precision up to the first race** -- the first report flags an
  operation that really is the second access of an oracle pair.

The generic detectors (lattice2d, vectorclock, fasttrack, naive) are
checked on fully general 2D programs; SP-bags only on spawn-sync
programs; ESP-bags only on async-finish programs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import (
    ESPBagsDetector,
    FastTrackDetector,
    Lattice2DDetector,
    NaiveDetector,
    SPBagsDetector,
    VectorClockDetector,
    detector_is_sound,
    exact_races,
    first_report_is_precise,
)
from repro.forkjoin import run, read, write
from repro.forkjoin.async_finish import x10
from repro.forkjoin.spawn_sync import cilk
from repro.workloads.synthetic import (
    SyntheticConfig,
    race_free_program,
    random_program,
)

GENERIC = [
    Lattice2DDetector,
    VectorClockDetector,
    FastTrackDetector,
    NaiveDetector,
]


def check_detectors(body, detector_factories):
    detectors = [factory() for factory in detector_factories]
    ex = run(body, observers=detectors, record_events=True)
    pairs = exact_races(ex.events)
    for det in detectors:
        assert detector_is_sound(det.races, pairs), (
            f"{det.name}: races={len(det.races)}, oracle={len(pairs)}"
        )
        assert first_report_is_precise(det.races, pairs), (
            f"{det.name}: first report {det.races[0]} not an oracle race"
        )
    return detectors, pairs


class TestGenericDetectorsOnRandomPrograms:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_shared_pool_programs(self, seed):
        cfg = SyntheticConfig(
            seed=seed, max_tasks=16, ops_per_task=6, n_locations=4
        )
        check_detectors(random_program(cfg), GENERIC)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_race_free_programs_stay_silent(self, seed):
        cfg = SyntheticConfig(seed=seed, max_tasks=14, ops_per_task=5)
        detectors, pairs = check_detectors(
            race_free_program(cfg), GENERIC
        )
        assert not pairs
        for det in detectors:
            assert det.races == []

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_hot_spot_programs(self, seed):
        from repro.workloads.access_patterns import hot_spot

        cfg = SyntheticConfig(
            seed=seed, max_tasks=12, ops_per_task=5,
            pattern=hot_spot(4),
        )
        check_detectors(random_program(cfg), GENERIC)


class TestSPBagsOnSpawnSync:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        depth=st.integers(1, 3),
    )
    def test_divide_and_conquer(self, seed, depth):
        from repro.workloads.spworkloads import divide_and_conquer

        check_detectors(
            divide_and_conquer(depth), GENERIC + [SPBagsDetector]
        )

    @settings(max_examples=20, deadline=None)
    @given(depth=st.integers(1, 3), fanout=st.integers(2, 3))
    def test_racy_divide_and_conquer(self, depth, fanout):
        from repro.workloads.spworkloads import racy_divide_and_conquer

        detectors, pairs = check_detectors(
            racy_divide_and_conquer(depth, fanout),
            GENERIC + [SPBagsDetector],
        )
        assert pairs  # the forgotten sync really races

    def test_map_reduce(self):
        from repro.workloads.spworkloads import map_reduce

        detectors, pairs = check_detectors(
            map_reduce(6), GENERIC + [SPBagsDetector]
        )
        assert not pairs


class TestESPBagsOnAsyncFinish:
    def _program(self, racy: bool):
        def worker(ctx):
            yield write(("slot", ctx.handle.tid))
            yield read("config")

        @x10
        def main(ctx):
            yield write("config")

            def block():
                for _ in range(3):
                    yield from ctx.async_(worker)
                if racy:
                    yield write("config", label="mid-block")

            yield from ctx.finish(block)
            yield read(("slot", 1))

        return main

    def test_race_free(self):
        detectors, pairs = check_detectors(
            self._program(racy=False), GENERIC + [ESPBagsDetector]
        )
        assert not pairs

    def test_racy(self):
        detectors, pairs = check_detectors(
            self._program(racy=True), GENERIC + [ESPBagsDetector]
        )
        assert pairs

    def test_escaped_async(self):
        def escapee(ctx):
            yield write("escaped")

        def spawner(ctx):
            yield from ctx.async_(escapee)
            yield read(("own", ctx.handle.tid))

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(spawner)
                yield read("escaped", label="racy-read")

            yield from ctx.finish(block)
            yield read("escaped")  # ordered: after the finish

        detectors, pairs = check_detectors(
            main, GENERIC + [ESPBagsDetector]
        )
        assert len(pairs) == 1


class TestPipelineAgreement:
    @pytest.mark.parametrize("racy", [False, True])
    def test_pipelines(self, racy):
        from repro.forkjoin.pipeline import pipeline_body, PipelineSpec
        from repro.workloads.pipelines import clean_pipeline, racy_pipeline

        items, stages = (
            racy_pipeline(4, 3) if racy else clean_pipeline(4, 3)
        )
        body = pipeline_body(PipelineSpec(tuple(items), tuple(stages)))
        detectors, pairs = check_detectors(body, GENERIC)
        assert bool(pairs) == racy
