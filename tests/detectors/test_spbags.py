"""Unit tests for the SP-bags baseline (spawn-sync programs only)."""

from __future__ import annotations

import pytest

from repro.detectors import SPBagsDetector, Lattice2DDetector, exact_races
from repro.forkjoin import read, run, write
from repro.forkjoin.spawn_sync import cilk


def drive(body):
    det = SPBagsDetector()
    ex = run(body, observers=[det], record_events=True)
    return det, ex


class TestBagSemantics:
    def test_returned_child_is_parallel_until_sync(self):
        @cilk
        def child(ctx):
            yield write("x", label="child-write")

        @cilk
        def main(ctx):
            yield from ctx.spawn(child)
            yield write("x", label="parent-write")  # child in P-bag: race
            yield from ctx.sync()
            yield write("x")  # after sync: serial, no second race

        det, _ = drive(main)
        assert len(det.races) == 1
        assert det.races[0].label == "parent-write"

    def test_sync_moves_p_to_s(self):
        @cilk
        def child(ctx):
            yield write("x")

        @cilk
        def main(ctx):
            yield from ctx.spawn(child)
            yield from ctx.sync()
            yield read("x")  # ordered
            yield write("x")

        det, _ = drive(main)
        assert det.races == []

    def test_siblings_race_through_p_bag(self):
        @cilk
        def child(ctx, tag):
            yield write("x", label=tag)

        @cilk
        def main(ctx):
            yield from ctx.spawn(child, "a")
            yield from ctx.spawn(child, "b")  # races with a's write
            yield from ctx.sync()

        det, _ = drive(main)
        assert len(det.races) == 1
        assert det.races[0].label == "b"

    def test_reader_tracking(self):
        """A parallel reader is retained so a later writer still trips."""
        @cilk
        def reader(ctx):
            yield read("x")

        @cilk
        def main(ctx):
            yield from ctx.spawn(reader)
            yield read("x")       # serial reader would overwrite...
            yield write("x", label="bad-write")  # ...but parallel one kept
            yield from ctx.sync()

        det, _ = drive(main)
        assert [r.label for r in det.races] == ["bad-write"]

    def test_nested_procedures(self):
        @cilk
        def grand(ctx):
            yield write("deep")

        @cilk
        def child(ctx):
            yield from ctx.spawn(grand)
            yield from ctx.sync()
            yield write("deep")

        @cilk
        def main(ctx):
            yield from ctx.spawn(child)
            yield from ctx.sync()
            yield read("deep")

        det, _ = drive(main)
        assert det.races == []


class TestAgreementWithLattice2D:
    @pytest.mark.parametrize("depth,fanout", [(1, 2), (2, 2), (2, 3), (3, 2)])
    def test_race_free_divide_and_conquer(self, depth, fanout):
        from repro.workloads.spworkloads import divide_and_conquer

        sp = SPBagsDetector()
        l2 = Lattice2DDetector()
        run(divide_and_conquer(depth, fanout), observers=[sp, l2])
        assert sp.races == [] and l2.races == []

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_racy_variant_both_flag(self, depth):
        from repro.workloads.spworkloads import racy_divide_and_conquer

        sp = SPBagsDetector()
        l2 = Lattice2DDetector()
        run(racy_divide_and_conquer(depth), observers=[sp, l2])
        assert sp.races and l2.races

    def test_constant_shadow_space(self):
        from repro.workloads.spworkloads import map_reduce

        sp = SPBagsDetector()
        run(map_reduce(12), observers=[sp])
        assert sp.shadow_peak_per_location() <= 2
