"""Unit tests for the FastTrack epoch-optimised detector."""

from __future__ import annotations

import pytest

from repro.core.reports import AccessKind
from repro.detectors.fasttrack import FastTrackDetector


def fresh():
    d = FastTrackDetector()
    d.on_root(0)
    return d


class TestEpochOptimisation:
    def test_exclusive_location_stays_constant_space(self):
        """Totally-ordered accesses keep one write epoch + one read epoch."""
        d = fresh()
        for _ in range(30):
            d.on_write(0, "x")
            d.on_read(0, "x")
        assert d.shadow_peak_per_location() <= 2
        assert d.races == []

    def test_read_share_inflates_to_vector(self):
        d = fresh()
        d.on_write(0, "cfg")  # publish
        kids = []
        for i in range(1, 6):
            d.on_fork(0, i)
            d.on_read(i, "cfg")
            d.on_halt(i)
            kids.append(i)
        assert d.races == []
        # concurrent readers force the read-vector representation
        assert d.shadow_peak_per_location() >= 5
        for i in reversed(kids):
            d.on_join(0, i)

    def test_write_collapses_read_vector(self):
        d = fresh()
        d.on_write(0, "cfg")
        kids = []
        for i in range(1, 4):
            d.on_fork(0, i)
            d.on_read(i, "cfg")
            d.on_halt(i)
            kids.append(i)
        for i in reversed(kids):
            d.on_join(0, i)
        d.on_write(0, "cfg")  # ordered after all reads: no race
        assert d.races == []
        cell = d.shadow.get("cfg")
        assert cell.read_vector is None  # collapsed back

    def test_same_epoch_read_fast_path(self):
        d = fresh()
        d.on_read(0, "x")
        entries_before = d.shadow_total_entries()
        d.on_read(0, "x")  # same epoch: nothing changes
        assert d.shadow_total_entries() == entries_before


class TestRaces:
    def test_write_write(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_write(0, "x")
        assert len(d.races) == 1
        assert d.races[0].prior_kind is AccessKind.WRITE

    def test_read_from_vector_race(self):
        """A write racing with one of several vector-tracked readers."""
        d = fresh()
        d.on_fork(0, 1)
        d.on_fork(1, 2)
        d.on_read(2, "x")
        d.on_halt(2)
        d.on_read(1, "x")  # 1 || 2: inflate to vector
        d.on_halt(1)
        d.on_join(0, 1)  # joins 1 but NOT 2
        d.on_write(0, "x")  # still races with 2's read
        assert len(d.races) == 1
        assert d.races[0].prior_kind is AccessKind.READ
        assert d.races[0].prior_repr == 2
        d.on_join(0, 2)

    def test_write_read_epoch_race(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_read(1, "x")
        d.on_halt(1)
        d.on_write(0, "x")
        assert len(d.races) == 1

    def test_ordered_program_is_silent(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_join(0, 1)
        d.on_read(0, "x")
        d.on_write(0, "x")
        assert d.races == []
