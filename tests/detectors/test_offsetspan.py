"""Unit and agreement tests for the offset-span labeling baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import (
    Lattice2DDetector,
    OffsetSpanDetector,
    SPBagsDetector,
    detector_is_sound,
    exact_races,
)
from repro.detectors.offsetspan import _ordered
from repro.errors import DetectorError
from repro.forkjoin import read, run, write
from repro.forkjoin.spawn_sync import cilk


class TestLabelOrdering:
    def test_identical_labels_ordered(self):
        assert _ordered(((0, 1),), ((0, 1),))

    def test_prefix_precedes_extension(self):
        assert _ordered(((0, 1),), ((0, 1), (0, 2)))
        assert not _ordered(((0, 1), (0, 2)), ((0, 1),))

    def test_team_mates_concurrent(self):
        a = ((0, 1), (0, 2))
        b = ((0, 1), (1, 2))
        assert not _ordered(a, b) and not _ordered(b, a)

    def test_phase_bump_orders(self):
        child = ((0, 1), (0, 2))
        after_join = ((0, 1), (3, 2))
        assert _ordered(child, after_join)
        assert not _ordered(after_join, child)

    def test_cross_episode_ordering(self):
        episode1_child = ((0, 1), (0, 2))
        episode2_child = ((0, 1), (3, 2), (0, 2))
        assert _ordered(episode1_child, episode2_child)


class TestDetection:
    def test_spawned_child_races_with_parent(self):
        @cilk
        def child(ctx):
            yield write("x", label="child")

        @cilk
        def main(ctx):
            yield from ctx.spawn(child)
            yield write("x", label="parent")
            yield from ctx.sync()

        det = OffsetSpanDetector()
        run(main, observers=[det])
        assert len(det.races) == 1
        assert det.races[0].label == "parent"

    def test_sync_orders(self):
        @cilk
        def child(ctx):
            yield write("x")

        @cilk
        def main(ctx):
            yield from ctx.spawn(child)
            yield from ctx.sync()
            yield read("x")
            yield write("x")

        det = OffsetSpanDetector()
        run(main, observers=[det])
        assert det.races == []

    def test_label_depth_tracks_nesting(self):
        @cilk
        def nest(ctx, depth):
            if depth:
                yield from ctx.spawn(nest, depth - 1)
                yield from ctx.sync()
            yield write(("leaf", depth))

        det = OffsetSpanDetector()
        run(nest, 6, observers=[det])
        assert det.peak_label_len >= 7  # one pair per nesting level

    def test_shadow_grows_with_depth_not_thread_count(self):
        """Wide-and-shallow: many threads, constant-ish labels."""
        @cilk
        def worker(ctx, i):
            yield read("cfg")

        @cilk
        def wide(ctx):
            yield write("cfg")
            for i in range(20):
                yield from ctx.spawn(worker, i)
            yield from ctx.sync()

        det = OffsetSpanDetector()
        run(wide, observers=[det])
        assert det.races == []
        # Incremental spawns nest the parent continuation, so depth is
        # O(outstanding spawns) here -- still far below a vector clock's
        # entry-per-thread, and it collapses after the sync.
        assert det.shadow_peak_per_location() < 3 * 21

    def test_non_lifo_join_rejected(self):
        from repro.forkjoin import fork, join

        def leaf(self):
            yield write("x")

        def main(self):
            a = yield fork(leaf)
            b = yield fork(leaf)
            yield join(b)
            yield join(a)
            # LIFO is fine; now break it with a leftover-style join:

        det = OffsetSpanDetector()
        run(main, observers=[det])  # LIFO: accepted

        def bad(self):
            a = yield fork(leaf)
            g = yield fork(inner, a)
            yield join(g)

        def inner(self, a):
            yield join(a)  # joins a task it never spawned

        det2 = OffsetSpanDetector()
        with pytest.raises(DetectorError, match="spawn-sync"):
            run(bad, observers=[det2])


class TestAgreement:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), depth=st.integers(1, 3))
    def test_agrees_with_oracle_on_dnc(self, seed, depth):
        from repro.workloads.spworkloads import divide_and_conquer

        det = OffsetSpanDetector()
        ex = run(divide_and_conquer(depth), observers=[det],
                 record_events=True)
        pairs = exact_races(ex.events)
        assert detector_is_sound(det.races, pairs)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_racy_dnc_flagged_like_spbags(self, depth):
        from repro.workloads.spworkloads import racy_divide_and_conquer

        os_det = OffsetSpanDetector()
        sp_det = SPBagsDetector()
        l2_det = Lattice2DDetector()
        run(racy_divide_and_conquer(depth),
            observers=[os_det, sp_det, l2_det])
        assert bool(os_det.races) == bool(sp_det.races) == bool(l2_det.races)

    def test_map_reduce_clean(self):
        from repro.workloads.spworkloads import map_reduce

        det = OffsetSpanDetector()
        run(map_reduce(8), observers=[det])
        assert det.races == []
