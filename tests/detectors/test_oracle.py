"""Unit tests for the exact offline oracle."""

from __future__ import annotations

from repro.core.reports import AccessKind, RaceReport
from repro.detectors.oracle import (
    detector_is_sound,
    exact_races,
    first_report_is_precise,
    oracle_race_pairs,
)
from repro.forkjoin import fork, join, read, run, write


def figure2_events():
    def task_a(self):
        yield read("l", label="A")

    def task_c(self, a):
        yield join(a)
        yield read("other")

    def main(self):
        a = yield fork(task_a)
        yield read("l", label="B")
        c = yield fork(task_c, a)
        yield write("l", label="D")
        yield join(c)

    return run(main, record_events=True).events


class TestExactRaces:
    def test_figure2_single_pair(self):
        pairs = exact_races(figure2_events())
        assert len(pairs) == 1
        p = pairs[0]
        assert p.loc == "l"
        assert p.first_kind is AccessKind.READ
        assert p.second_kind is AccessKind.WRITE

    def test_race_free_program_empty(self):
        def main(self):
            yield write("x")
            yield read("x")

        assert exact_races(run(main, record_events=True).events) == []

    def test_pairs_ordered_by_second_access(self):
        def w(self, tag):
            yield write("x", label=tag)

        def main(self):
            a = yield fork(w, "a")
            b = yield fork(w, "b")
            yield write("x")
            yield join(b)
            yield join(a)

        pairs = exact_races(run(main, record_events=True).events)
        seconds = [p.second for p in pairs]
        assert seconds == sorted(seconds)
        assert len(pairs) == 3  # a-b, a-main, b-main

    def test_oracle_race_pairs_keys(self):
        keys = oracle_race_pairs(figure2_events())
        assert len(keys) == 1
        (loc, first, second), = keys
        assert loc == "l" and first < second


class TestContracts:
    def test_soundness_predicate(self):
        rep = RaceReport(
            loc="l", task=0, kind=AccessKind.WRITE,
            prior_kind=AccessKind.READ,
        )
        pairs = exact_races(figure2_events())
        assert detector_is_sound([rep], pairs)
        assert detector_is_sound([], [])
        assert not detector_is_sound([], pairs)
        assert not detector_is_sound([rep], [])

    def test_precision_predicate(self):
        pairs = exact_races(figure2_events())
        flagged = pairs[0].second
        good = RaceReport(
            loc="l", task=0, kind=AccessKind.WRITE,
            prior_kind=AccessKind.READ, op_index=flagged + 1,
        )
        bad = RaceReport(
            loc="l", task=0, kind=AccessKind.WRITE,
            prior_kind=AccessKind.READ, op_index=1,
        )
        assert first_report_is_precise([good], pairs)
        assert not first_report_is_precise([bad], pairs)
        assert first_report_is_precise([], [])
        assert not first_report_is_precise([], pairs)
        assert not first_report_is_precise([good], [])
