"""Tests for the event and traversal-item vocabulary."""

from __future__ import annotations

import pytest

from repro.events import (
    Arc,
    ForkEvent,
    Loop,
    ReadEvent,
    StopArc,
    WriteEvent,
    format_traversal,
    iter_vertices,
)


class TestTraversalItems:
    def test_arc_equality_and_last_flag(self):
        assert Arc(1, 2) == Arc(1, 2)
        assert Arc(1, 2) != Arc(1, 2, last=True)

    def test_items_are_hashable(self):
        assert len({Arc(1, 2), Loop(1), StopArc(1), Arc(1, 2)}) == 3

    def test_iter_vertices(self):
        items = [Loop(1), Arc(1, 2), Loop(2), StopArc(2)]
        assert list(iter_vertices(items)) == [1, 2]

    def test_format_traversal_matches_paper_notation(self):
        items = [Loop(1), Arc(1, 2), StopArc(2)]
        assert format_traversal(items) == "(1, 1)(1, 2)(2, \N{MULTIPLICATION SIGN})"

    def test_format_traversal_rejects_non_items(self):
        with pytest.raises(TypeError):
            format_traversal(["nope"])


class TestEvents:
    def test_events_are_frozen(self):
        ev = ReadEvent(1, "x")
        with pytest.raises(AttributeError):
            ev.loc = "y"  # type: ignore[misc]

    def test_defaults(self):
        assert ForkEvent(0, 1).label == ""
        assert WriteEvent(2).loc is None
