"""Keep the documentation honest: run every Python block in the docs.

Extracts fenced ``python`` code blocks from README.md and
docs/ALGORITHM.md and executes them in one namespace per file (blocks
in a file may build on each other).  Shell blocks are skipped.
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "docs" / "ALGORITHM.md",
    ROOT / "docs" / "OBSERVABILITY.md",
    ROOT / "docs" / "PERFORMANCE.md",
    ROOT / "docs" / "SERVING.md",
    ROOT / "docs" / "SCALE_OUT.md",
    ROOT / "docs" / "FAULT_TOLERANCE.md",
    ROOT / "docs" / "PREDICTION.md",
    ROOT / "docs" / "COMPRESSION.md",
]

BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def blocks_of(path: pathlib.Path):
    return BLOCK_RE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_code_blocks_execute(path):
    blocks = blocks_of(path)
    assert blocks, f"{path.name} has no python blocks"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            pytest.fail(f"{path.name} block {i} failed: {exc}\n{block}")


def test_design_and_experiments_exist_and_mention_the_paper():
    design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "Race Detection in Two Dimensions" in design
    assert "Theorem 5" in experiments
    # every experiment id in the DESIGN index has a section or mention
    for exp_id in ("F2", "F4", "T3", "T5", "C1", "C2", "C3", "A1", "A2"):
        assert exp_id in design
        assert exp_id in experiments
