"""Smoke tests: every example script runs cleanly as __main__."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
