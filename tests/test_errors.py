"""Tests for the exception hierarchy and the one-call convenience API."""

from __future__ import annotations

import pytest

from repro import detect_races
from repro.errors import (
    DeadTaskError,
    DetectorError,
    GraphError,
    NotATwoDimensionalLattice,
    ProgramError,
    QueryPreconditionError,
    ReproError,
    StructureError,
    TraversalError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            StructureError,
            TraversalError,
            QueryPreconditionError,
            GraphError,
            NotATwoDimensionalLattice,
            ProgramError,
            DeadTaskError,
            DetectorError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_specific_parents(self):
        assert issubclass(NotATwoDimensionalLattice, GraphError)
        assert issubclass(DeadTaskError, ProgramError)

    def test_one_catch_covers_the_library(self):
        """A caller can guard any library call with one except clause."""
        from repro.lattice.generators import boolean_lattice
        from repro.lattice.poset import Poset
        from repro.lattice.realizer import realizer_of

        try:
            realizer_of(Poset(boolean_lattice(3)))
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")


class TestDetectRacesConvenience:
    def test_racy_program(self):
        from repro.workloads.racegen import conflicting_pair_program

        races = detect_races(conflicting_pair_program())
        assert len(races) == 1

    def test_clean_program(self):
        from repro.workloads.racegen import conflicting_pair_program

        assert detect_races(conflicting_pair_program(ordered=True)) == []

    def test_kwargs_forwarded(self):
        from repro.forkjoin.program import step

        def runaway(self):
            while True:
                yield step()

        with pytest.raises(ProgramError, match="budget"):
            detect_races(runaway, max_ops=50)
