"""Tests for the workload generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import Lattice2DDetector, exact_races
from repro.forkjoin import run
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.access_patterns import (
    hot_spot,
    private,
    striped,
    uniform_shared,
)
from repro.workloads.pipelines import (
    clean_pipeline,
    racy_pipeline,
    read_shared_pipeline,
    shared_counter_pipeline,
)
from repro.workloads.spworkloads import (
    divide_and_conquer,
    map_reduce,
    racy_divide_and_conquer,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    race_free_program,
    random_program,
)


class TestSynthetic:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_replay_determinism(self, seed):
        """Running the same config twice yields identical event streams."""
        cfg = SyntheticConfig(seed=seed, max_tasks=12, ops_per_task=5)
        ex1 = run(random_program(cfg), record_events=True)
        ex2 = run(random_program(cfg), record_events=True)
        assert ex1.events == ex2.events

    def test_task_budget_respected(self):
        cfg = SyntheticConfig(seed=3, max_tasks=10, ops_per_task=8,
                              fork_probability=0.9)
        ex = run(random_program(cfg))
        assert ex.task_count <= 10

    def test_race_free_really_race_free(self):
        for seed in range(15):
            cfg = SyntheticConfig(seed=seed, max_tasks=12, ops_per_task=6)
            ex = run(race_free_program(cfg), record_events=True)
            assert exact_races(ex.events) == []

    def test_different_seeds_differ(self):
        e1 = run(random_program(SyntheticConfig(seed=1)), record_events=True)
        e2 = run(random_program(SyntheticConfig(seed=2)), record_events=True)
        assert e1.events != e2.events

    def test_shared_pool_produces_races_somewhere(self):
        found = False
        for seed in range(10):
            cfg = SyntheticConfig(seed=seed, max_tasks=16, ops_per_task=6,
                                  n_locations=2)
            det = Lattice2DDetector()
            run(random_program(cfg), observers=[det])
            if det.races:
                found = True
                break
        assert found


class TestAccessPatterns:
    def test_private_disjoint_across_tasks(self):
        import random as _random

        p = private()
        rng = _random.Random(0)
        locs1 = {p(1, i, rng) for i in range(8)}
        locs2 = {p(2, i, rng) for i in range(8)}
        assert locs1.isdisjoint(locs2)

    def test_striped_within_pool(self):
        import random as _random

        p = striped(4)
        rng = _random.Random(0)
        for task in range(5):
            for op in range(5):
                loc = p(task, op, rng)
                assert loc[1] < 4

    def test_uniform_and_hotspot_draw_from_rng(self):
        import random as _random

        for pattern in (uniform_shared(8), hot_spot(8)):
            rng = _random.Random(42)
            locs = {pattern(0, i, rng) for i in range(50)}
            assert len(locs) > 1


class TestPipelineWorkloads:
    def test_clean_is_clean(self):
        items, stages = clean_pipeline(4, 3)
        ex = run_pipeline(items, stages, record_events=True)
        assert exact_races(ex.events) == []

    def test_racy_is_racy(self):
        items, stages = racy_pipeline(4, 3)
        ex = run_pipeline(items, stages, record_events=True)
        assert exact_races(ex.events)

    def test_racy_custom_stages(self):
        items, stages = racy_pipeline(3, 4, writer_stage=1, reader_stage=2)
        ex = run_pipeline(items, stages, record_events=True)
        assert exact_races(ex.events)

    def test_read_shared_is_race_free(self):
        items, stages = read_shared_pipeline(4, 3)
        ex = run_pipeline(items, stages, record_events=True)
        assert exact_races(ex.events) == []

    def test_shared_counter_races_across_stages(self):
        items, stages = shared_counter_pipeline(3, 3)
        ex = run_pipeline(items, stages, record_events=True)
        assert exact_races(ex.events)

    def test_single_stage_counter_is_serialised(self):
        items, stages = shared_counter_pipeline(4, 1)
        ex = run_pipeline(items, stages, record_events=True)
        assert exact_races(ex.events) == []


class TestSPWorkloads:
    def test_divide_and_conquer_task_count(self):
        ex = run(divide_and_conquer(3, 2))
        assert ex.task_count == 2**4 - 1  # full binary tree of depth 3

    def test_map_reduce_race_free(self):
        ex = run(map_reduce(5), record_events=True)
        assert exact_races(ex.events) == []

    def test_racy_variant_races(self):
        ex = run(racy_divide_and_conquer(2), record_events=True)
        assert exact_races(ex.events)


class TestRaceInjection:
    def test_injected_race_always_detected(self):
        from repro.detectors import Lattice2DDetector, exact_races
        from repro.workloads.racegen import INJECTED_LOC, with_injected_race
        from repro.workloads.synthetic import race_free_program

        for seed in range(5):
            cfg = SyntheticConfig(seed=seed, max_tasks=10, ops_per_task=4)
            body = with_injected_race(race_free_program(cfg))
            det = Lattice2DDetector()
            ex = run(body, observers=[det], record_events=True)
            pairs = exact_races(ex.events)
            assert len(pairs) == 1
            assert pairs[0].loc == INJECTED_LOC
            assert len(det.races) == 1
            assert det.races[0].loc == INJECTED_LOC

    def test_injection_does_not_perturb_existing_verdicts(self):
        from repro.detectors import exact_races
        from repro.workloads.racegen import INJECTED_LOC, with_injected_race

        cfg = SyntheticConfig(seed=7, max_tasks=12, ops_per_task=6,
                              n_locations=3)
        base = run(random_program(cfg), record_events=True)
        base_pairs = {
            (p.loc, p.first, p.second) for p in exact_races(base.events)
        }
        wrapped = run(
            with_injected_race(random_program(cfg)), record_events=True
        )
        wrapped_pairs = {
            (p.loc, p.first, p.second)
            for p in exact_races(wrapped.events)
        }
        extra = {p for p in wrapped_pairs if p[0] == INJECTED_LOC}
        assert len(extra) == 1
        assert {p for p in wrapped_pairs if p[0] != INJECTED_LOC} == base_pairs

    def test_conflicting_pair_program_modes(self):
        from repro.detectors import Lattice2DDetector
        from repro.workloads.racegen import conflicting_pair_program

        racy = Lattice2DDetector()
        run(conflicting_pair_program(), observers=[racy])
        assert len(racy.races) == 1

        clean = Lattice2DDetector()
        run(conflicting_pair_program(ordered=True), observers=[clean])
        assert clean.races == []


class TestLoopProgram:
    """The repetitive loop workload feeding the compressed-trace
    subsystem (the CLI ``--loops``/``--racegen-loops`` knobs)."""

    def test_access_count_and_block_periodicity(self):
        from repro.compress import compress
        from repro.engine.benchlib import capture
        from repro.workloads.racegen import loop_program

        fanout, loops, pattern = 3, 10, 8
        _events, batch, _ = capture(loop_program(fanout, loops, pattern))
        accesses = sum(1 for op in batch.ops if op >= 4)  # READ/WRITE
        assert accesses == fanout * loops * pattern
        # Each worker's run is periodic in ``pattern``, so compressing
        # at the period collapses the interior to a handful of blocks.
        ctrace = compress(batch, pattern)
        assert len(ctrace.blocks) <= ctrace.block_count() // 2
        assert ctrace.decompress().ops.tobytes() == batch.ops.tobytes()

    def test_race_free_by_default(self):
        from repro.workloads.racegen import loop_program

        det = Lattice2DDetector()
        run(loop_program(3, 4, 8), observers=[det])
        assert det.races == []

    def test_racy_seeds_exactly_one_pair(self):
        from repro.workloads.racegen import loop_program

        det = Lattice2DDetector()
        run(loop_program(3, 4, 8, racy=True), observers=[det])
        assert len(det.races) == 1
        assert det.races[0].label == "loop-racer-1"
