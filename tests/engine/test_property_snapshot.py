"""Property sweep: checkpoint/kill/restore never changes the verdict.

Random spawn-sync programs (the generator from
``test_property_differential``) are batched at a random granularity and
ingested up to a random cut point; the engine is serialized, dropped on
the floor (the "kill"), deserialized, and fed the rest of the stream.
The resumed engine must finish in *exactly* the state -- race multiset
included -- of an engine that never stopped.  Blobs stay in memory here;
the file/fsync layer has its own exhaustive tests in
``test_snapshot.py``.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import BatchBuilder
from repro.engine.ingest import BatchEngine
from repro.engine.snapshot import engine_from_blob, engine_to_blob, state_digest
from repro.forkjoin.interpreter import run

from .test_property_differential import _cilk_program, spawn_sync_cases

pytestmark = pytest.mark.engine


def _races(engine) -> Counter:
    return Counter(
        (r.task, r.loc, r.kind, r.prior_kind, r.op_index)
        for r in engine.detector.races
    )


@settings(max_examples=50, deadline=None)
@given(case=spawn_sync_cases(), data=st.data())
def test_resume_at_any_batch_boundary_matches_uninterrupted(case, data):
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    batch = builder.batch

    batch_size = data.draw(
        st.integers(1, max(1, len(batch))), label="batch_size"
    )
    pieces = list(batch.slices(batch_size))
    cut = data.draw(st.integers(0, len(pieces)), label="cut")

    uninterrupted = BatchEngine(interner=builder.interner)
    uninterrupted.ingest_all(pieces)

    engine = BatchEngine(interner=builder.interner)
    engine.ingest_all(pieces[:cut])
    restored, _meta = engine_from_blob(engine_to_blob(engine))
    # The restore itself must be exact, not merely race-equivalent.
    assert state_digest(restored) == state_digest(engine)

    restored.ingest_all(pieces[cut:])
    assert state_digest(restored) == state_digest(uninterrupted)
    assert _races(restored) == _races(uninterrupted)


@settings(max_examples=25, deadline=None)
@given(case=spawn_sync_cases(max_leaves=6), data=st.data())
def test_chained_checkpoints_are_lossless(case, data):
    """Several save/restore hops in one stream lose nothing either."""
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    pieces = list(builder.batch.slices(max(1, len(builder.batch) // 5)))

    uninterrupted = BatchEngine(interner=builder.interner)
    uninterrupted.ingest_all(pieces)

    engine = BatchEngine(interner=builder.interner)
    for piece in pieces:
        engine.ingest(piece)
        if data.draw(st.booleans(), label="hop"):
            engine, _meta = engine_from_blob(engine_to_blob(engine))
    assert state_digest(engine) == state_digest(uninterrupted)
