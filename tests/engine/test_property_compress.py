"""Property-based equivalence and corruption sweep for the compressed
trace subsystem.

Three guarantees, each over arbitrary inputs:

* ``compress``/``decompress`` are bit-exact inverses on any columnar
  batch at any block width, and the RPR2TRZ container round-trips the
  compressed form (plus interner) identically;
* detection over the compressed form -- the memoized kernel under
  serial lattice2d, depa, and the sharded engine -- reports exactly
  the race multiset of ingesting the raw batch;
* every corrupted RPR2TRZ container (any strict prefix, any single
  flipped bit, any lying header field) answers with a typed
  :class:`~repro.errors.TraceError` before allocating.
"""

from __future__ import annotations

import io
import struct
from array import array
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import CompressedTrace, compress, read_tracez, write_tracez
from repro.compress.container import _ZHEADER, ZVERSION
from repro.engine.batch import BatchBuilder, EventBatch, LocationInterner
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.errors import TraceError
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from tests.engine.test_property_differential import (
    _cilk_program,
    spawn_sync_cases,
)

pytestmark = pytest.mark.engine

BLOCK_WIDTHS = (3, 8, 64, 256)

_I32 = st.integers(-(2**31), 2**31 - 1)


@st.composite
def raw_batches(draw):
    """Arbitrary column triples -- compression is pure data movement,
    so it must round-trip even invalid opcode streams."""
    n = draw(st.integers(0, 60))
    ops = array(
        "B", draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))
    )
    av = array("i", draw(st.lists(_I32, min_size=n, max_size=n)))
    bv = array("i", draw(st.lists(_I32, min_size=n, max_size=n)))
    return EventBatch(ops, av, bv)


def _capture(case) -> EventBatch:
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    return builder.batch


def _multiset(reports) -> Counter:
    return Counter((r.task, r.loc, r.kind, r.prior_kind) for r in reports)


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(batch=raw_batches(), width=st.sampled_from(BLOCK_WIDTHS))
    def test_compress_decompress_bit_exact(self, batch, width):
        ctrace = compress(batch, width, registry=MetricsRegistry())
        assert len(ctrace) == len(batch)
        back = ctrace.decompress()
        assert back.ops.tobytes() == batch.ops.tobytes()
        assert back.a.tobytes() == batch.a.tobytes()
        assert back.b.tobytes() == batch.b.tobytes()

    @settings(max_examples=60, deadline=None)
    @given(batch=raw_batches(), width=st.sampled_from(BLOCK_WIDTHS))
    def test_container_round_trips_compressed_form(self, batch, width):
        """RPR2TRZ preserves the *compressed* structure -- same blocks,
        same rules, same expansion -- not merely the expansion."""
        ctrace = compress(batch, width, registry=MetricsRegistry())
        interner = LocationInterner()
        for loc in ("x", ("y", 3), 7):
            interner.intern(loc)
        buf = io.BytesIO()
        write_tracez(buf, ctrace, interner)
        buf.seek(0)
        back, back_interner = read_tracez(buf)
        assert back.block_width == ctrace.block_width
        assert back.rules == ctrace.rules
        assert len(back.blocks) == len(ctrace.blocks)
        for mine, theirs in zip(ctrace.blocks, back.blocks):
            assert theirs.ops.tobytes() == mine.ops.tobytes()
            assert theirs.a.tobytes() == mine.a.tobytes()
            assert theirs.b.tobytes() == mine.b.tobytes()
        assert back_interner.locations() == interner.locations()
        out = back.decompress()
        assert out.ops.tobytes() == batch.ops.tobytes()


class TestDetectionEquivalence:
    """compress -> detect must equal detect-raw on every program, every
    engine flavour, every block width (including widths that straddle
    fork/join boundaries and force the scalar fallback)."""

    @settings(max_examples=40, deadline=None)
    @given(
        case=spawn_sync_cases(max_leaves=8),
        width=st.sampled_from(BLOCK_WIDTHS),
    )
    def test_serial_lattice2d(self, case, width):
        batch = _capture(case)
        ref = BatchEngine(registry=MetricsRegistry())
        ref.ingest(batch)

        alt = BatchEngine(registry=MetricsRegistry())
        alt.ingest_compressed(compress(batch, width))
        assert _multiset(alt.races()) == _multiset(ref.races())

    @settings(max_examples=30, deadline=None)
    @given(
        case=spawn_sync_cases(max_leaves=8),
        width=st.sampled_from(BLOCK_WIDTHS),
    )
    def test_depa_backend(self, case, width):
        batch = _capture(case)
        ref = BatchEngine(backend="depa", registry=MetricsRegistry())
        ref.ingest(batch)

        alt = BatchEngine(backend="depa", registry=MetricsRegistry())
        alt.ingest_compressed(compress(batch, width))
        assert _multiset(alt.races()) == _multiset(ref.races())

    @settings(max_examples=15, deadline=None)
    @given(
        case=spawn_sync_cases(max_leaves=8),
        shards=st.sampled_from((2, 3)),
    )
    def test_sharded_engine(self, case, shards):
        batch = _capture(case)
        ref = BatchEngine(registry=MetricsRegistry())
        ref.ingest(batch)

        alt = ShardedBatchEngine(shards, registry=MetricsRegistry())
        alt.ingest_compressed(compress(batch, 8))
        assert _multiset(alt.races()) == _multiset(ref.races())

    @settings(max_examples=20, deadline=None)
    @given(case=spawn_sync_cases(max_leaves=8))
    def test_split_containers_equal_one(self, case):
        """Compressing the stream as several successive containers
        (the serve CBATCH arrival pattern) matches one-shot raw ingest:
        memo state and detector state carry across calls."""
        batch = _capture(case)
        ref = BatchEngine(registry=MetricsRegistry())
        ref.ingest(batch)

        alt = BatchEngine(registry=MetricsRegistry())
        for piece in batch.slices(max(1, len(batch) // 3)):
            alt.ingest_compressed(compress(piece, 8))
        assert _multiset(alt.races()) == _multiset(ref.races())


# -- corruption -------------------------------------------------------------


def _relied(blob: bytes, offset: int, fmt: str, value: int) -> bytes:
    """Patch one header field and *re-CRC the header*, producing a
    container whose header lies but passes the corruption check --
    exactly what a hostile writer would ship."""
    import zlib

    head = bytearray(blob[: _ZHEADER.size])
    struct.pack_into(fmt, head, offset, value)
    crc = struct.pack("<I", zlib.crc32(bytes(head)) & 0xFFFFFFFF)
    return bytes(head) + crc + blob[_ZHEADER.size + 4:]


def _healthy() -> bytes:
    """One small healthy RPR2TRZ container with real dedup (repeated
    blocks), built once per process."""
    builder = BatchBuilder()
    batch = builder.batch
    for _ in range(6):
        for loc_id in range(4):
            batch.append(5, 0, loc_id)  # OP_WRITE rows, period 4
    interner = LocationInterner()
    for loc in ("x", ("y", 3), 7):
        interner.intern(loc)
    ctrace = compress(batch, 4, registry=MetricsRegistry())
    assert len(ctrace.blocks) == 1 and ctrace.rules == [(0, 6)]
    buf = io.BytesIO()
    write_tracez(buf, ctrace, interner)
    return buf.getvalue()


class TestCorruptionRejection:
    def test_every_strict_prefix_is_rejected(self):
        """Exhaustive: truncation at *every* byte boundary -- header,
        table, lengths, payload, rules, any CRC -- raises TraceError."""
        blob = _healthy()
        for cut in range(len(blob)):
            with pytest.raises(TraceError):
                read_tracez(io.BytesIO(blob[:cut]))

    def test_every_single_bit_flip_is_rejected(self):
        """Exhaustive: one flipped bit per byte position anywhere in
        the container is caught (CRC per section, magic/version/bound
        checks on the header) -- never silently decoded."""
        blob = _healthy()
        for pos in range(len(blob)):
            bad = bytearray(blob)
            bad[pos] ^= 0x01
            with pytest.raises(TraceError):
                read_tracez(io.BytesIO(bytes(bad)))

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: b"XXXXXXXX" + d[8:], "not a compressed"),
            (
                lambda d: _relied(d, 12, "<I", ZVERSION + 9),
                "unsupported compressed trace version",
            ),
            (lambda d: _relied(d, 8, "<B", 7), "bad endianness flag"),
            (
                lambda d: _relied(d, 16, "<I", 2**24),
                "implausible compressed trace block width",
            ),
            (lambda d: _relied(d, 28, "<Q", 2**48), "lying"),
            (lambda d: _relied(d, 36, "<Q", 2**48), "lying"),
            (lambda d: _relied(d, 44, "<Q", 2**48), "lying"),
            (
                lambda d: _relied(d, 20, "<Q", 2**48),
                "expand to",
            ),
            (lambda d: d[: _ZHEADER.size - 4], "truncated"),
            (lambda d: d[:-1], "truncated|CRC"),
        ],
    )
    def test_lying_headers_rejected(self, mutate, match):
        """Headers whose length fields lie (re-CRC'd so the corruption
        layer cannot save us) are refused by the bound checks before
        any header-sized allocation."""
        blob = mutate(_healthy())
        with pytest.raises(TraceError, match=match):
            read_tracez(io.BytesIO(blob))

    def test_bad_rule_reference_rejected(self):
        """A structurally valid container whose rules reference a
        missing block is refused at validation, not at expansion."""
        batch = EventBatch(
            array("B", [5] * 4), array("i", [0] * 4), array("i", [1] * 4)
        )
        ctrace = compress(batch, 4, registry=MetricsRegistry())
        ctrace.rules[:] = [(3, 1)]  # block 3 does not exist
        buf = io.BytesIO()
        interner = LocationInterner()
        write_tracez(buf, ctrace, interner)
        buf.seek(0)
        with pytest.raises(TraceError):
            read_tracez(buf)
