"""DePa backend: detector semantics, vectorized kernel, engine wiring.

Three layers under test:

* :class:`DePaDetector`'s scalar observer-protocol methods -- the
  reference semantics (verdicts mirror the union-find detector; the
  fork-first posture rejects out-of-discipline streams);
* :func:`ingest_depa`'s numpy segment kernel -- must leave the detector
  in exactly the state the scalar methods would (reports down to
  ``op_index``), must reject corrupt batches with the same typed
  errors, and must fall back to scalar replay on hostile streams so
  the offending event raises its precise error;
* the engine wiring -- ``backend="depa"`` on both
  :class:`BatchEngine` and :class:`ShardedBatchEngine`, and the
  union-find referee (:func:`cross_check_backend`).
"""

from __future__ import annotations

from array import array
from collections import Counter

import pytest

from repro.core.reports import AccessKind
from repro.detectors.depa import DePaDetector
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    BatchBuilder,
    EventBatch,
)
from repro.engine.differential import cross_check_backend
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.engine.vectorized import ingest_depa
from repro.errors import DetectorError, ProgramError
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from repro.workloads.racegen import (
    bulk_access_program,
    conflicting_pair_program,
)

pytestmark = pytest.mark.engine

BODY = bulk_access_program(4, 3, 12, racy_rounds=(0, 2))


def capture(body):
    builder = BatchBuilder()
    ex = run(body, observers=[builder], record_events=True)
    assert ex.events is not None
    return ex.events, builder.batch, builder.interner


def flags(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


def report_keys(races):
    return [
        (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index)
        for r in races
    ]


def make_batch(rows):
    return EventBatch(
        array("B", [r[0] for r in rows]),
        array("i", [r[1] for r in rows]),
        array("i", [r[2] for r in rows]),
    )


class TestDePaDetector:
    """Scalar reference semantics, per-event over the interpreter."""

    def test_detects_the_conflicting_pair(self):
        det = DePaDetector()
        run(conflicting_pair_program("x"), observers=[det])
        [race] = det.races
        assert race.loc == "x"
        assert race.kind == AccessKind.WRITE

    def test_ordered_pair_is_clean(self):
        det = DePaDetector()
        run(conflicting_pair_program("x", ordered=True), observers=[det])
        assert det.races == []

    def test_matches_lattice2d_per_event(self):
        from repro.detectors.lattice2d import Lattice2DDetector

        ref = Lattice2DDetector()
        run(BODY, observers=[ref])
        det = DePaDetector()
        run(BODY, observers=[det])
        assert flags(det.races) == flags(ref.races)
        assert len(ref.races) > 0

    def test_fork_first_violation_raises(self):
        det = DePaDetector()
        det.on_root(0)
        det.on_fork(0)  # task 1 is now the stack top
        with pytest.raises(DetectorError, match="fork-first"):
            det.on_read(0, "x")

    def test_join_running_thread_raises(self):
        det = DePaDetector()
        det.on_root(0)
        det.on_fork(0)
        det.on_halt(1)
        with pytest.raises(DetectorError, match="running"):
            det.on_join(0, 0)

    def test_double_join_raises(self):
        det = DePaDetector()
        det.on_root(0)
        det.on_fork(0)
        det.on_halt(1)
        det.on_join(0, 1)
        with pytest.raises(DetectorError, match="twice"):
            det.on_join(0, 1)

    def test_unknown_thread_raises(self):
        det = DePaDetector()
        det.on_root(0)
        with pytest.raises(DetectorError, match="unknown thread"):
            det.on_join(0, 7)
        with pytest.raises(DetectorError, match="unknown thread"):
            det.on_read(7, "x")

    def test_halted_task_rejected(self):
        det = DePaDetector()
        det.on_root(0)
        det.on_fork(0)
        det.on_halt(1)
        with pytest.raises(DetectorError, match="already halted"):
            det.on_step(1)

    def test_halt_with_unjoined_child_leaves_gap(self):
        """A halt with a forked-but-unjoined child parks a
        *non-contiguous* interval list: the gap is the unjoined child,
        whose accesses must stay unordered after the grandparent's
        join."""
        det = DePaDetector()
        det.on_root(0)
        det.on_fork(0)       # task 1
        det.on_fork(1)       # task 2
        det.on_write(2, "b")
        det.on_halt(2)       # halt_seq 0
        det.on_join(1, 2)    # 1 absorbs [0, 0]
        det.on_fork(1)       # task 3 -- never joined
        det.on_write(3, "a")
        det.on_halt(3)       # halt_seq 1 -- the gap
        det.on_halt(1)       # halt_seq 2; parks [0,0, 2,2]
        det.on_join(0, 1)
        assert det.ordered(2) is True   # joined grandchild
        assert det.ordered(3) is False  # unjoined grandchild
        det.on_read(0, "b")  # clean: 2's write was absorbed
        det.on_read(0, "a")  # races: 3 was never joined
        [race] = det.races
        assert (race.loc, race.prior_repr) == ("a", 3)

    def test_joins_coalesce_in_both_orders(self):
        """Children joined in forward or reverse halt order collapse to
        one absorbed interval (plus the permanent guard) -- the
        steady-state shape the vectorized kernel's threshold fast path
        relies on."""
        for order in ((1, 2, 3), (3, 2, 1)):
            det = DePaDetector()
            det.on_root(0)
            for _ in range(3):
                child = det.on_fork(0)
                det.on_halt(child)
            for child in order:
                det.on_join(0, child)
            assert len(det._g_lo) == 2  # guard + one coalesced run
            assert (det._g_lo[1], det._g_hi[1]) == (0, 2)

    def test_live_tasks_are_ordered(self):
        det = DePaDetector()
        det.on_root(0)
        det.on_fork(0)
        assert det.ordered(0) is True  # ancestor on the stack
        assert det.ordered(1) is True  # the acting task itself


class TestVectorizedKernel:
    """The numpy kernel must be indistinguishable from scalar replay."""

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_state_matches_per_event_exactly(self, batch_size):
        events, batch, interner = capture(BODY)
        ref = DePaDetector()
        ref.on_root(0)
        from repro.engine.benchlib import drive_per_event

        drive_per_event(events, ref)

        engine = BatchEngine(backend="depa", interner=interner)
        engine.ingest_all(batch.slices(batch_size))

        assert report_keys(engine.races()) == report_keys(ref.races)
        assert len(ref.races) > 0
        det = engine.detector
        assert det.op_index == ref.op_index
        assert det._halt_seq == ref._halt_seq
        assert det._state == ref._state
        assert list(det._g_lo) == list(ref._g_lo)
        assert list(det._g_hi) == list(ref._g_hi)

    def test_unknown_opcode_rejected_scalar_and_vectorized(self):
        det = DePaDetector()
        det.on_root(0)
        # Short batch: the scalar fallback path rejects it...
        with pytest.raises(ProgramError, match="unknown opcode"):
            ingest_depa(det, make_batch([(9, 0, 0)]))
        # ...and a long batch is rejected by the hoisted batch check.
        rows = [(OP_READ, 0, 0)] * 40 + [(9, 0, 0)]
        with pytest.raises(ProgramError, match="unknown opcode 9"):
            ingest_depa(det, make_batch(rows))

    def test_negative_location_rejected(self):
        det = DePaDetector()
        det.on_root(0)
        rows = [(OP_READ, 0, 0)] * 40 + [(OP_WRITE, 0, -5)]
        with pytest.raises(ProgramError, match="negative location"):
            ingest_depa(det, make_batch(rows))

    def test_hostile_stream_raises_the_exact_scalar_error(self):
        """Access rows naming a non-top task defeat the batch-level
        stack simulation; the kernel must replay scalar and raise the
        precise fork-first error, not a wrong verdict."""
        det = DePaDetector()
        det.on_root(0)
        rows = [(OP_FORK, 0, 1)] + [(OP_READ, 0, 0)] * 40
        with pytest.raises(DetectorError, match="fork-first"):
            ingest_depa(det, make_batch(rows))

    def test_structural_error_positions_survive_vectorization(self):
        """A bad join deep in a long batch raises the same error the
        scalar path would, with all prior events applied."""
        det = DePaDetector()
        det.on_root(0)
        rows = (
            [(OP_READ, 0, 0)] * 40
            + [(OP_FORK, 0, 1), (OP_HALT, 1, -1), (OP_JOIN, 0, 1)]
            + [(OP_JOIN, 0, 1)]  # joined twice
        )
        with pytest.raises(DetectorError, match="twice"):
            ingest_depa(det, make_batch(rows))
        assert det.op_index == 43  # everything before the bad join landed

    @pytest.mark.parametrize("fanout", [64, 256])
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_deep_fanout_structural_runs_match_per_event(
        self, fanout, batch_size
    ):
        """Deep-fanout rounds produce long same-opcode structural runs
        (``fanout`` forks, then ``fanout`` joins back to back) -- the
        rows the vectorized structural dispatch turns into bulk column
        updates.  Every batch size must leave the detector in exactly
        the per-event state, reports down to ``op_index``."""
        body = bulk_access_program(2, fanout, 6, racy_rounds=(0,))
        events, batch, interner = capture(body)
        ref = DePaDetector()
        ref.on_root(0)
        from repro.engine.benchlib import drive_per_event

        drive_per_event(events, ref)

        engine = BatchEngine(backend="depa", interner=interner)
        engine.ingest_all(batch.slices(batch_size))

        assert report_keys(engine.races()) == report_keys(ref.races)
        assert len(ref.races) > 0
        det = engine.detector
        assert det.op_index == ref.op_index
        assert det._halt_seq == ref._halt_seq
        assert det._state == ref._state
        assert list(det._g_lo) == list(ref._g_lo)
        assert list(det._g_hi) == list(ref._g_hi)

    def test_corrupt_row_inside_structural_run_raises_at_op_index(self):
        """A hostile row buried inside a long structural run must
        surface the scalar path's typed error at its exact position,
        with every earlier row of the run already applied."""
        rows = []
        for k in range(1, 65):  # 64 leaf bursts: fork, access, halt
            rows += [(OP_FORK, 0, k), (OP_WRITE, k, 3), (OP_HALT, k, -1)]
        rows += [(OP_JOIN, 0, k) for k in range(1, 33)]
        corrupt_at = len(rows)
        rows.append((OP_JOIN, 0, 999))  # never forked
        rows += [(OP_JOIN, 0, k) for k in range(33, 65)]

        det = DePaDetector()
        det.on_root(0)
        with pytest.raises(DetectorError, match="unknown thread"):
            ingest_depa(det, make_batch(rows))
        assert det.op_index == corrupt_at  # run applied up to the row

    def test_step_rows_are_barriers(self):
        """Steps are rare and scalar; a batch mixing them in still
        matches per-event replay."""
        rows = []
        rows.append((OP_FORK, 0, 1))
        rows += [(OP_WRITE, 1, k % 5) for k in range(30)]
        rows.append((OP_STEP, 1, -1))
        rows += [(OP_READ, 1, k % 5) for k in range(30)]
        rows.append((OP_HALT, 1, -1))
        rows.append((OP_JOIN, 0, 1))
        rows += [(OP_WRITE, 0, k % 5) for k in range(30)]
        batch = make_batch(rows)

        ref = DePaDetector()
        ref.on_root(0)
        for op, a, b in rows:
            if op == OP_READ:
                ref.on_read(a, b)
            elif op == OP_WRITE:
                ref.on_write(a, b)
            elif op == OP_FORK:
                ref.on_fork(a, b)
            elif op == OP_JOIN:
                ref.on_join(a, b)
            elif op == OP_HALT:
                ref.on_halt(a)
            else:
                ref.on_step(a)

        det = DePaDetector()
        det.on_root(0)
        assert ingest_depa(det, batch) == "vectorized"
        assert report_keys(det.races) == report_keys(ref.races)
        assert det.op_index == ref.op_index


class TestEngineWiring:
    def test_batch_engine_backend(self):
        _, batch, interner = capture(conflicting_pair_program("x"))
        engine = BatchEngine(backend="depa", interner=interner)
        engine.ingest(batch)
        [race] = engine.races()
        assert race.loc == "x"

    def test_backend_and_detector_are_mutually_exclusive(self):
        with pytest.raises(ProgramError, match="not both"):
            BatchEngine(DePaDetector(), backend="depa")
        with pytest.raises(ProgramError, match="not both"):
            ShardedBatchEngine(
                2, detector_factory=DePaDetector, backend="depa"
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProgramError, match="unknown engine backend"):
            BatchEngine(backend="nope")
        with pytest.raises(ProgramError, match="unknown engine backend"):
            ShardedBatchEngine(2, backend="nope")

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_depa_equals_serial(self, shards):
        _, batch, interner = capture(BODY)
        ref = BatchEngine(interner=interner, registry=MetricsRegistry())
        ref.ingest_all(batch.slices(64))
        engine = ShardedBatchEngine(
            shards,
            backend="depa",
            interner=interner,
            registry=MetricsRegistry(),
        )
        engine.ingest_all(batch.slices(64))
        assert flags(engine.races()) == flags(ref.races())
        assert len(ref.races()) > 0

    def test_cross_check_backend_referee(self):
        _, batch, interner = capture(BODY)
        agree, ref_races, alt_races = cross_check_backend(
            batch, interner, backend="depa", batch_size=64
        )
        assert agree is True
        assert len(ref_races) == len(alt_races) > 0
