"""Property-based equivalence sweep for the multi-process engine.

Random spawn-sync programs (the generator from the differential sweep)
replayed through :class:`ParallelShardedEngine` at 1/2/4/8 workers must
flag exactly the accesses the serial :class:`BatchEngine` flags -- same
multiset, same counts -- and the parent's routing counters must match
what the workers report consuming.  The ``backend="depa"`` tier rides
the same sweep at 1/2/4 workers: depa workers run the segment kernel
over their selected sub-streams and must still merge to the serial
lattice2d multiset.  Pools are built once per (worker count, backend)
and reset between examples; per-example process spawning would drown
the sweep in fork latency.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import BatchBuilder
from repro.engine.ingest import BatchEngine
from repro.engine.parallel import ParallelShardedEngine
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from tests.engine.test_property_differential import (
    _cilk_program,
    spawn_sync_cases,
)

pytestmark = pytest.mark.engine

WORKER_COUNTS = (1, 2, 4, 8)


def _flag_multiset(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


@pytest.fixture(scope="module")
def pool():
    engines = {}

    def get(
        workers: int, backend: str = "lattice2d"
    ) -> ParallelShardedEngine:
        key = (workers, backend)
        if key not in engines:
            engines[key] = ParallelShardedEngine(
                workers, registry=MetricsRegistry(), backend=backend
            )
        engine = engines[key]
        engine.reset()
        return engine

    yield get
    for engine in engines.values():
        engine.close()


def _capture(case):
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    return builder.batch


@settings(max_examples=30, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    workers=st.sampled_from(WORKER_COUNTS),
)
def test_parallel_equals_serial(pool, case, workers):
    batch = _capture(case)
    ref = BatchEngine(registry=MetricsRegistry())
    ref.ingest(batch)

    engine = pool(workers)
    engine.ingest(batch)
    races = engine.races()
    assert _flag_multiset(races) == _flag_multiset(ref.races())
    assert len(races) == len(ref.races())
    assert engine.routing_counts() == engine.worker_access_counts()


@settings(max_examples=30, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    workers=st.sampled_from((1, 2, 4)),
)
def test_depa_parallel_equals_serial(pool, case, workers):
    """The depa-native worker tier: every worker runs the segment
    kernel over its selected sub-stream, and the merged multiset must
    equal the serial lattice2d engine's."""
    batch = _capture(case)
    ref = BatchEngine(registry=MetricsRegistry())
    ref.ingest(batch)

    engine = pool(workers, backend="depa")
    engine.ingest(batch)
    races = engine.races()
    assert _flag_multiset(races) == _flag_multiset(ref.races())
    assert len(races) == len(ref.races())


@settings(max_examples=15, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    workers=st.sampled_from(WORKER_COUNTS),
)
def test_sliced_payloads_equal_serial(pool, case, workers):
    """Odd slice sizes exercise the structural mirror across calls and
    the small-batch validation fallback."""
    batch = _capture(case)
    ref = BatchEngine(registry=MetricsRegistry())
    ref.ingest(batch)

    engine = pool(workers)
    engine.ingest_all(batch.slices(5))
    assert _flag_multiset(engine.races()) == _flag_multiset(ref.races())
