"""The differential harness on traces whose race status is known.

The harness is the engine's acceptance gate: lattice2d, fasttrack and
spbags must give the same per-access verdict on every spawn-sync trace
we can generate -- with and without seeded races -- and the sharded
fast path must flag exactly the same accesses as the unsharded one.
"""

from __future__ import annotations

import pytest

from repro.engine.batch import BatchBuilder
from repro.engine.differential import (
    DEFAULT_DETECTORS,
    cross_check_sharded,
    replay_differential,
)
from repro.errors import ProgramError
from repro.forkjoin.interpreter import run
from repro.workloads.racegen import (
    bulk_access_program,
    conflicting_pair_program,
    with_injected_race,
)

pytestmark = pytest.mark.engine


def capture(body):
    builder = BatchBuilder()
    run(body, observers=[builder])
    return builder.batch, builder.interner


class TestTrioAgreement:
    @pytest.mark.parametrize("ordered", [False, True])
    def test_conflicting_pair(self, ordered):
        batch, interner = capture(
            conflicting_pair_program("x", ordered=ordered)
        )
        report = replay_differential(batch, interner)
        assert report.agreed, [str(d) for d in report.divergences]
        expected = 0 if ordered else 1
        assert report.races == dict.fromkeys(DEFAULT_DETECTORS, expected)

    def test_clean_bulk_workload(self):
        batch, interner = capture(bulk_access_program(4, 3, 10))
        report = replay_differential(batch, interner)
        assert report.agreed
        assert set(report.races.values()) == {0}

    def test_racy_bulk_workload_counts_match_seeding(self):
        batch, interner = capture(
            bulk_access_program(5, 3, 10, racy_rounds=(0, 3))
        )
        report = replay_differential(batch, interner)
        assert report.agreed
        assert set(report.races.values()) == {2}  # one per racy round

    def test_injected_race_over_clean_base(self):
        body = with_injected_race(bulk_access_program(3, 2, 8))
        batch, interner = capture(body)
        report = replay_differential(batch, interner)
        assert report.agreed
        assert set(report.races.values()) == {1}

    def test_summary_mentions_the_verdict(self):
        batch, interner = capture(conflicting_pair_program("x"))
        report = replay_differential(batch, interner)
        assert "all detectors agree" in report.summary()
        assert report.accesses == 2

    def test_unknown_detector_name_rejected(self):
        batch, interner = capture(conflicting_pair_program("x"))
        with pytest.raises(ProgramError, match="unknown detector"):
            replay_differential(batch, interner, ("lattice2d", "nope"))


class TestDivergenceDetection:
    def test_a_bent_detector_is_caught(self):
        """Feed the harness one detector that stopped reporting: the
        divergence machinery itself must light up."""
        from repro.bench.harness import DETECTOR_FACTORIES

        class Muzzled:
            name = "muzzled"

            def __init__(self):
                self._inner = DETECTOR_FACTORIES["lattice2d"]()
                self.races = []  # never grows

            def __getattr__(self, attr):
                return getattr(self._inner, attr)

        DETECTOR_FACTORIES["muzzled"] = Muzzled
        try:
            batch, interner = capture(conflicting_pair_program("x"))
            report = replay_differential(
                batch, interner, ("lattice2d", "muzzled")
            )
            assert not report.agreed
            [div] = report.divergences
            assert div.flagged == ("lattice2d",)
            assert div.silent == ("muzzled",)
            assert div.loc == "x"
            assert "flagged" in str(div)
        finally:
            del DETECTOR_FACTORIES["muzzled"]


class TestShardedCrossCheck:
    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_sharded_agrees_on_racy_workload(self, num_shards):
        batch, interner = capture(
            bulk_access_program(4, 4, 9, racy_rounds=(1, 2))
        )
        agree, ref_races, sharded_races = cross_check_sharded(
            batch, interner, num_shards=num_shards, batch_size=31
        )
        assert agree
        assert len(ref_races) == len(sharded_races) == 2
