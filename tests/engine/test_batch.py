"""Columnar batches: interning, capture, round-trips, slicing."""

from __future__ import annotations

import pytest

from repro.engine.batch import (
    OP_FORK,
    OP_READ,
    OP_WRITE,
    BatchBuilder,
    EventBatch,
    LocationInterner,
    batch_from_events,
    events_from_batch,
)
from repro.errors import ProgramError
from repro.forkjoin.interpreter import run
from repro.workloads.racegen import bulk_access_program, conflicting_pair_program

pytestmark = pytest.mark.engine


class TestLocationInterner:
    def test_first_seen_order_and_inverse(self):
        table = LocationInterner()
        assert table.intern("x") == 0
        assert table.intern(("a", 1)) == 1
        assert table.intern("x") == 0  # stable on re-intern
        assert len(table) == 2
        assert table.location(1) == ("a", 1)
        assert table.locations() == ["x", ("a", 1)]
        assert "x" in table and "y" not in table

    def test_unknown_id_raises(self):
        table = LocationInterner()
        with pytest.raises(KeyError):
            table.location(0)


class TestEventBatch:
    def test_mismatched_columns_rejected(self):
        from array import array

        with pytest.raises(ProgramError):
            EventBatch(array("B", [OP_READ]), array("i"), array("i"))

    def test_slices_cover_everything_in_order(self):
        batch = EventBatch()
        for i in range(10):
            batch.append(OP_READ, i, i)
        parts = list(batch.slices(4))
        assert [len(p) for p in parts] == [4, 4, 2]
        assert [a for p in parts for a in p.a] == list(range(10))

    def test_slices_reject_nonpositive_size(self):
        with pytest.raises(ProgramError):
            list(EventBatch().slices(0))

    def test_counts_and_access_count(self):
        batch = EventBatch()
        batch.append(OP_FORK, 0, 1)
        batch.append(OP_WRITE, 1, 0)
        batch.append(OP_READ, 0, 0)
        assert batch.counts()["fork"] == 1
        assert batch.counts()["write"] == 1
        assert batch.access_count() == 2
        assert "unknown" not in batch.counts()

    def test_counts_reports_unknown_opcodes_without_crashing(self):
        """A corrupt batch must still be *describable*: the diagnostic
        tallies out-of-range opcodes under a typed key instead of
        raising IndexError (rejection is the ingest paths' job)."""
        batch = EventBatch()
        batch.append(OP_READ, 0, 0)
        batch.append(99, 0, 0)
        batch.append(250, 0, 0)
        counts = batch.counts()
        assert counts["read"] == 1
        assert counts["unknown"] == 2
        assert sum(counts.values()) == len(batch)
        assert batch.access_count() == 1  # unknown rows are not accesses


class TestCaptureAndRoundTrip:
    def test_builder_captures_a_run(self):
        builder = BatchBuilder()
        run(conflicting_pair_program("x"), observers=[builder])
        batch = builder.batch
        # fork, child's write+halt, root's write, join
        assert batch.access_count() == 2
        assert builder.interner.locations() == ["x"]

    def test_events_round_trip_through_columns(self):
        ex = run(bulk_access_program(2, 2, 6), record_events=True)
        assert ex.events is not None
        batch, interner = batch_from_events(ex.events)
        back = events_from_batch(batch, interner)
        # Labels are dropped by design; everything else survives.
        from dataclasses import replace

        assert back == [replace(ev, label="") for ev in ex.events]

    def test_builder_matches_batch_from_events(self):
        body = bulk_access_program(2, 3, 5, racy_rounds=(1,))
        builder = BatchBuilder()
        ex = run(body, observers=[builder], record_events=True)
        assert ex.events is not None
        batch, interner = batch_from_events(ex.events)
        assert list(builder.batch.ops) == list(batch.ops)
        assert list(builder.batch.a) == list(batch.a)
        assert list(builder.batch.b) == list(batch.b)
        assert builder.interner.locations() == interner.locations()
