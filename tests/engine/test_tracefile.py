"""The compact binary trace format: round-trips and rejection."""

from __future__ import annotations

import pytest

from repro.engine.batch import BatchBuilder
from repro.engine.tracefile import (
    MAGIC,
    is_tracefile,
    map_trace,
    read_trace,
    record_trace,
    write_trace,
)
from repro.errors import ProgramError
from repro.forkjoin.interpreter import run
from repro.workloads.racegen import bulk_access_program

pytestmark = pytest.mark.engine

BODY = bulk_access_program(2, 3, 7, racy_rounds=(1,))


def capture(body):
    builder = BatchBuilder()
    run(body, observers=[builder])
    return builder.batch, builder.interner


class TestRoundTrip:
    def test_batch_survives_write_read(self, tmp_path):
        batch, interner = capture(BODY)
        path = str(tmp_path / "t.rtrc")
        assert write_trace(path, batch, interner) == len(batch)
        back, back_interner = read_trace(path)
        assert list(back.ops) == list(batch.ops)
        assert list(back.a) == list(batch.a)
        assert list(back.b) == list(batch.b)
        assert back_interner.locations() == interner.locations()

    def test_record_trace_one_call(self, tmp_path):
        path = str(tmp_path / "t.rtrc")
        count = record_trace(BODY, path=path)
        batch, interner = read_trace(path)
        assert len(batch) == count > 0
        # Tuple locations survive the tagged JSON codec.
        assert ("racy", 1) in interner.locations()

    def test_replay_of_trace_detects_the_seeded_race(self, tmp_path):
        from repro.engine.ingest import BatchEngine

        path = str(tmp_path / "t.rtrc")
        record_trace(BODY, path=path)
        batch, interner = read_trace(path)
        engine = BatchEngine(interner=interner)
        engine.ingest(batch)
        assert [r.loc for r in engine.races()] == [("racy", 1)]


class TestMappedTrace:
    def test_whole_batch_matches_read_trace(self, tmp_path):
        batch, interner = capture(BODY)
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        with map_trace(path) as mapped:
            assert len(mapped) == len(batch)
            assert mapped.interner.locations() == interner.locations()
            back = mapped.batch()
        assert back.ops.tobytes() == batch.ops.tobytes()
        assert back.a.tobytes() == batch.a.tobytes()
        assert back.b.tobytes() == batch.b.tobytes()

    def test_slices_reassemble_the_trace(self, tmp_path):
        """Offset/length slices -- the parallel-worker feed -- cover the
        trace exactly, with no overlap and no gap."""
        batch, interner = capture(BODY)
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        with map_trace(path) as mapped:
            n = len(mapped)
            cuts = [0, n // 3, n // 2, n]
            pieces = [
                mapped.batch(lo, hi) for lo, hi in zip(cuts, cuts[1:])
            ]
        assert b"".join(p.ops.tobytes() for p in pieces) == batch.ops.tobytes()
        assert b"".join(p.a.tobytes() for p in pieces) == batch.a.tobytes()
        assert b"".join(p.b.tobytes() for p in pieces) == batch.b.tobytes()

    def test_columns_are_zero_copy_views(self, tmp_path):
        batch, interner = capture(BODY)
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        mapped = map_trace(path)
        ops_v, a_v, b_v = mapped.columns(1, 4)
        assert isinstance(ops_v, memoryview)
        assert bytes(ops_v) == batch.ops.tobytes()[1:4]
        assert bytes(a_v) == batch.a.tobytes()[4:16]
        ops_v.release()
        a_v.release()
        b_v.release()
        mapped.close()
        assert mapped.closed

    def test_bad_slice_rejected(self, tmp_path):
        batch, interner = capture(BODY)
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        with map_trace(path) as mapped:
            with pytest.raises(ProgramError, match="bad trace slice"):
                mapped.columns(0, len(mapped) + 1)
            with pytest.raises(ProgramError, match="bad trace slice"):
                mapped.columns(3, 2)

    def test_corrupt_files_rejected(self, tmp_path):
        empty = tmp_path / "empty.rtrc"
        empty.write_bytes(b"")
        with pytest.raises(ProgramError, match="truncated"):
            map_trace(str(empty))
        bad = tmp_path / "bad.rtrc"
        bad.write_bytes(b"X" * 64)
        with pytest.raises(ProgramError, match="magic"):
            map_trace(str(bad))

    def test_use_after_close_rejected(self, tmp_path):
        batch, interner = capture(BODY)
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        mapped = map_trace(path)
        mapped.close()
        with pytest.raises(ProgramError, match="closed"):
            mapped.columns()


class TestSniffAndErrors:
    def test_is_tracefile(self, tmp_path):
        good = tmp_path / "good.rtrc"
        record_trace(BODY, path=str(good))
        assert is_tracefile(str(good))
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"not a trace")
        assert not is_tracefile(str(bad))
        assert not is_tracefile(str(tmp_path / "absent"))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"X" * 64)
        with pytest.raises(ProgramError, match="magic"):
            read_trace(str(path))

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.rtrc"
        path.write_bytes(MAGIC)
        with pytest.raises(ProgramError, match="truncated"):
            read_trace(str(path))

    def test_truncated_payload_rejected(self, tmp_path):
        batch, interner = capture(BODY)
        path = tmp_path / "cut.rtrc"
        write_trace(str(path), batch, interner)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) - 8])
        with pytest.raises(ProgramError, match="truncated"):
            read_trace(str(path))
