"""Property-based round-trips and corruption rejection for RPR2TRC.

`write_trace`/`read_trace` must be bit-exact inverses on *any* batch --
including the empty one and the cross-endian payload path -- and
`read_trace` must answer every corrupted input with
:class:`~repro.errors.ProgramError`, never an allocation blow-up or a
raw codec exception.  The strict-prefix property doubles as the
regression test for the header bound-check: ``n_events``/``table_len``
are validated against the real file size before sizing any read.
"""

from __future__ import annotations

import io
import struct
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import EventBatch, LocationInterner
from repro.engine.tracefile import (
    _HEADER,
    MAGIC,
    VERSION,
    read_trace,
    write_trace,
)
from repro.errors import ProgramError

pytestmark = pytest.mark.engine

_I32 = st.integers(-(2**31), 2**31 - 1)

#: location shapes the tagged JSON codec round-trips exactly
_LOCATIONS = st.one_of(
    st.integers(-(2**40), 2**40),
    st.text(max_size=8),
    st.tuples(st.text(max_size=4), st.integers(0, 100)),
    st.booleans(),
    st.none(),
)


@st.composite
def batches(draw):
    n = draw(st.integers(0, 40))
    ops = array("B", draw(st.lists(st.integers(0, 255),
                                   min_size=n, max_size=n)))
    av = array("i", draw(st.lists(_I32, min_size=n, max_size=n)))
    bv = array("i", draw(st.lists(_I32, min_size=n, max_size=n)))
    interner = LocationInterner()
    for loc in draw(st.lists(_LOCATIONS, max_size=6, unique=True)):
        interner.intern(loc)
    return EventBatch(ops, av, bv), interner


def _dump(batch, interner) -> bytes:
    buf = io.BytesIO()
    write_trace(buf, batch, interner)
    return buf.getvalue()


def _assert_identical(batch, interner, back, back_interner) -> None:
    assert back.ops.tobytes() == batch.ops.tobytes()
    assert back.a.tobytes() == batch.a.tobytes()
    assert back.b.tobytes() == batch.b.tobytes()
    assert back_interner.locations() == interner.locations()


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(case=batches())
    def test_bit_exact(self, case):
        batch, interner = case
        data = _dump(batch, interner)
        back, back_interner = read_trace(io.BytesIO(data))
        _assert_identical(batch, interner, back, back_interner)

    @settings(max_examples=40, deadline=None)
    @given(case=batches())
    def test_byteswapped_payload_reads_identically(self, case):
        """The endian flag is honoured: a trace whose array columns were
        written on the other byte order round-trips through byteswap."""
        batch, interner = case
        data = _dump(batch, interner)
        n = len(batch)
        table_len = len(data) - _HEADER.size - n * (1 + 4 + 4)
        swapped_a = array("i", batch.a)
        swapped_b = array("i", batch.b)
        swapped_a.byteswap()
        swapped_b.byteswap()
        foreign = (
            data[:8]
            + bytes([1 - data[8]])  # claim the opposite byte order
            + data[9 : _HEADER.size + table_len + n]  # header tail+table+ops
            + swapped_a.tobytes()
            + swapped_b.tobytes()
        )
        back, back_interner = read_trace(io.BytesIO(foreign))
        _assert_identical(batch, interner, back, back_interner)

    def test_empty_batch(self):
        batch = EventBatch(array("B"), array("i"), array("i"))
        data = _dump(batch, LocationInterner())
        back, back_interner = read_trace(io.BytesIO(data))
        assert len(back) == 0
        assert len(back_interner) == 0


#: one healthy little trace to corrupt, built once
def _healthy() -> bytes:
    interner = LocationInterner()
    for loc in ("x", ("y", 3), 7):
        interner.intern(loc)
    batch = EventBatch(
        array("B", [1, 2, 1]), array("i", [0, 0, 1]), array("i", [0, 1, 2])
    )
    return _dump(batch, interner)


class TestCorruptionRejection:
    @pytest.mark.parametrize(
        "mutate, why",
        [
            (lambda d: b"XXXXXXXX" + d[8:], "bad magic"),
            (
                lambda d: d[:12] + struct.pack("<I", VERSION + 9) + d[16:],
                "bad version",
            ),
            (lambda d: d[:8] + b"\x07" + d[9:], "bad endian flag"),
            (
                lambda d: d[:16] + struct.pack("<Q", 2**48) + d[24:],
                "n_events lies high",
            ),
            (
                lambda d: d[:24] + struct.pack("<Q", 2**48) + d[32:],
                "table_len lies high",
            ),
            (
                lambda d: d[:16] + struct.pack("<Q", 10**6) + d[24:],
                "n_events larger than payload",
            ),
            (lambda d: d[: _HEADER.size - 4], "truncated header"),
            (lambda d: d[: _HEADER.size + 2], "truncated table"),
            (lambda d: d[:-1], "truncated payload"),
            (
                lambda d: d[: _HEADER.size]
                + b"}" * (len(d) - _HEADER.size),
                "table is not JSON",
            ),
            (
                lambda d: d[:24]
                + struct.pack("<Q", 2)
                + d[32 : 32 + 2]
                + d[32:],
                "table truncated to non-JSON prefix",
            ),
        ],
    )
    def test_rejected_with_program_error(self, mutate, why):
        blob = mutate(_healthy())
        with pytest.raises(ProgramError):
            read_trace(io.BytesIO(blob))

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_every_strict_prefix_is_rejected(self, data):
        """Truncation anywhere -- header, table or payload -- raises
        ProgramError (and never allocates from a lying header)."""
        blob = _healthy()
        cut = data.draw(st.integers(0, len(blob) - 1))
        with pytest.raises(ProgramError):
            read_trace(io.BytesIO(blob[:cut]))

    def test_table_not_a_list_rejected(self):
        blob = _healthy()
        payload = b'{"a":1}'
        bad = (
            _HEADER.pack(MAGIC, blob[8], VERSION, 0, len(payload)) + payload
        )
        with pytest.raises(ProgramError, match="not a list"):
            read_trace(io.BytesIO(bad))

    def test_lying_n_events_fails_before_allocating(self):
        """Regression: a header claiming 2**48 events must be rejected
        by the size check, not handed to read()/frombytes."""
        blob = _healthy()
        lying = blob[:16] + struct.pack("<Q", 2**48) + blob[24:]
        with pytest.raises(ProgramError, match="claims"):
            read_trace(io.BytesIO(lying))
