"""Sharded ingestion is an equivalence, not an approximation.

For shard counts 1, 2, 3 and 8 the sharded engine must produce exactly
the race reports and shadow occupancy of the unsharded engine on the
same trace, and its routing counters must account for every ingested
event exactly once (accesses against their owner shard, replicated
lifecycle events once).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.engine.batch import BatchBuilder
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from repro.workloads.racegen import bulk_access_program

pytestmark = pytest.mark.engine

SHARD_COUNTS = (1, 2, 3, 8)

WORKLOAD = bulk_access_program(6, 4, 11, racy_rounds=(1, 4))


def _capture():
    builder = BatchBuilder()
    run(WORKLOAD, observers=[builder])
    return builder.batch, builder.interner


def _flag_multiset(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


def _shadow_total(engine) -> int:
    return sum(det.shadow.total_entries() for det in engine.shards)


@pytest.fixture(scope="module")
def reference():
    batch, interner = _capture()
    engine = BatchEngine(interner=interner, registry=MetricsRegistry())
    engine.ingest_all(batch.slices(512))
    return batch, interner, engine


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_equals_unsharded(shards, reference):
    batch, interner, ref = reference
    registry = MetricsRegistry()
    engine = ShardedBatchEngine(shards, interner=interner,
                                registry=registry)
    engine.ingest_all(batch.slices(512))

    # Identical race verdicts (per-shard streams renumber op_index, so
    # reports are compared as a multiset of flagged accesses).
    assert _flag_multiset(engine.races()) == _flag_multiset(ref.races())
    assert len(engine.races()) == len(ref.races()) > 0

    # Identical shadow occupancy: every location lives in exactly one
    # shard, so entries must sum to the unsharded detector's total.
    assert _shadow_total(engine) == ref.detector.shadow.total_entries()

    # Routing counters partition the trace: per-shard access counts
    # plus once-counted lifecycle events add up to the batch length.
    snapshot = registry.snapshot()["counters"]
    routed = sum(
        snapshot[
            f'engine_shard_accesses_total{{engine="sharded",shard="{k}"}}'
        ]
        for k in range(shards)
    )
    lifecycle = snapshot[
        'engine_shard_lifecycle_total{engine="sharded"}'
    ]
    assert routed == batch.access_count()
    assert routed + lifecycle == len(batch)
    assert snapshot['engine_events_total{engine="sharded"}'] == len(batch)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_batch_size_does_not_matter(shards, reference):
    batch, interner, ref = reference
    one_shot = ShardedBatchEngine(shards, interner=interner,
                                  registry=MetricsRegistry())
    one_shot.ingest(batch)
    sliced = ShardedBatchEngine(shards, interner=interner,
                                registry=MetricsRegistry())
    sliced.ingest_all(batch.slices(64))
    assert _flag_multiset(one_shot.races()) == _flag_multiset(
        sliced.races()
    ) == _flag_multiset(ref.races())
