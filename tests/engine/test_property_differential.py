"""Property-based differential fuzzing of the detector trio.

The differential harness is only as good as the traces fed to it, so
this sweep generates them: random series-parallel programs with random
access plans, replayed in lockstep through lattice2d / fasttrack /
spbags.  Every generated trace must produce **zero** per-access verdict
divergences; a hypothesis-shrunk counterexample prints the offending
event stream.

Two generators, matching the two disciplines in the repo:

* random SP decomposition trees realised as *spawn-sync* (Cilk)
  programs and executed depth-first by the interpreter -- the only
  trace shape ``spbags`` is sound on, so the full trio runs;
* random SP digraphs realised by :mod:`repro.forkjoin.synthesis` --
  the traversal-ordered streams are valid structured fork-join but
  interleave joins with accesses, so only the structure-generic pair
  (lattice2d, fasttrack) applies.

Access plans put at most two accesses on any location: with a single
potential racing pair per location every detector must flag exactly
the same access, whereas secondary races on one location are reported
at detector-specific positions by design (FastTrack adapts its epochs,
SP-bags keeps one reader/writer) and are covered by the aggregate
tests in ``test_differential.py``.
"""

from __future__ import annotations

import random
from itertools import count
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import AccessKind
from repro.engine.batch import BatchBuilder, batch_from_events
from repro.engine.differential import DEFAULT_DETECTORS, replay_differential
from repro.forkjoin.interpreter import run
from repro.forkjoin.program import read, write
from repro.forkjoin.spawn_sync import cilk
from repro.forkjoin.synthesis import synthesize_events
from repro.lattice.dominance import Diagram
from repro.lattice.poset import Poset
from repro.lattice.series_parallel import (
    SPLeaf,
    SPSeries,
    SPTree,
    random_sp_tree,
    sp_digraph,
)

pytestmark = pytest.mark.engine

#: leaf index -> accesses to perform there, in order
AccessPlan = Dict[int, List[Tuple[str, AccessKind]]]

_KINDS = st.sampled_from((AccessKind.READ, AccessKind.WRITE))


def _leaf_count(tree: SPTree) -> int:
    if isinstance(tree, SPLeaf):
        return 1
    return sum(_leaf_count(c) for c in tree.children)


@st.composite
def _plans(draw, slots: int, max_locations: int = 4) -> AccessPlan:
    """Random accesses over ``slots`` program points, at most two per
    location (one potential racing pair -- see module docstring)."""
    plan: AccessPlan = {}
    for li in range(draw(st.integers(1, max_locations))):
        placements = draw(
            st.lists(
                st.tuples(st.integers(0, slots - 1), _KINDS),
                min_size=1,
                max_size=2,
            )
        )
        for slot, kind in placements:
            plan.setdefault(slot, []).append((f"l{li}", kind))
    return plan


@st.composite
def spawn_sync_cases(draw, max_leaves: int = 10):
    seed = draw(st.integers(0, 2**32 - 1))
    leaves = draw(st.integers(1, max_leaves))
    tree = random_sp_tree(leaves, random.Random(seed))
    return tree, draw(_plans(_leaf_count(tree)))


@st.composite
def synthesis_cases(draw, max_leaves: int = 10):
    seed = draw(st.integers(0, 2**32 - 1))
    leaves = draw(st.integers(1, max_leaves))
    graph = sp_digraph(random_sp_tree(leaves, random.Random(seed)))
    verts = sorted(graph.vertices())
    plan = draw(_plans(len(verts)))
    accesses = {
        verts[slot]: entries for slot, entries in plan.items()
    }
    return graph, accesses


def _cilk_program(tree: SPTree, plan: AccessPlan):
    """Realise an SP decomposition tree as a spawn-sync program.

    Series nodes run their children in order on the current task;
    parallel nodes spawn one child task each, then sync.  Leaves are
    numbered in-order and perform the plan's accesses.
    """
    slots = count()

    def walk(ctx, node):
        if isinstance(node, SPLeaf):
            for loc, kind in plan.get(next(slots), ()):
                yield read(loc) if kind is AccessKind.READ else write(loc)
        elif isinstance(node, SPSeries):
            for child in node.children:
                yield from walk(ctx, child)
        else:  # SPParallel
            for child in node.children:

                @cilk
                def subtask(sub, _child=child):
                    yield from walk(sub, _child)

                yield from ctx.spawn(subtask)
            yield from ctx.sync()

    @cilk
    def main(ctx):
        yield from walk(ctx, tree)

    return main


def _offending_trace(events, report) -> str:
    lines = [str(d) for d in report.divergences]
    lines.append("offending trace:")
    lines.extend(f"  [{i}] {ev}" for i, ev in enumerate(events))
    return "\n".join(lines)


class TestTrioOnSpawnSyncPrograms:
    @settings(max_examples=60, deadline=None)
    @given(case=spawn_sync_cases())
    def test_zero_divergences(self, case):
        tree, plan = case
        builder = BatchBuilder()
        ex = run(_cilk_program(tree, plan), observers=[builder],
                 record_events=True)
        report = replay_differential(
            builder.batch, builder.interner, DEFAULT_DETECTORS
        )
        assert report.agreed, _offending_trace(ex.events, report)
        assert report.accesses == sum(len(v) for v in plan.values())

    @settings(max_examples=20, deadline=None)
    @given(case=spawn_sync_cases(max_leaves=6))
    def test_race_counts_identical_across_the_trio(self, case):
        tree, plan = case
        builder = BatchBuilder()
        run(_cilk_program(tree, plan), observers=[builder])
        report = replay_differential(builder.batch, builder.interner)
        assert len(set(report.races.values())) == 1, report.races


class TestPairOnSynthesizedLattices:
    @settings(max_examples=60, deadline=None)
    @given(case=synthesis_cases())
    def test_zero_divergences(self, case):
        graph, accesses = case
        synth = synthesize_events(
            Diagram.from_poset(Poset(graph)), accesses
        )
        batch, interner = batch_from_events(synth.events)
        report = replay_differential(
            batch, interner, ("lattice2d", "fasttrack")
        )
        assert report.agreed, _offending_trace(synth.events, report)
