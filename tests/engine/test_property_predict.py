"""Property-based soundness sweep for the prediction engine.

Random spawn-sync programs ingested through ``BatchEngine(predict=True)``
must *cover* what the observed-order engine flags: the predicted
``(task, loc, kind)`` multiset is a superset of the lattice2d one, on
every program, serially and sharded.  Prediction must also be
schedule-of-ingest independent -- the predicted race set (down to the
partner task of each pair) is identical across batch sizes 1, 7, 64 and
10k, and across 1/2/4 shards.

The deterministic tests at the bottom pin the *strictness* of the
superset: one program where prediction reports strictly more pairs than
the observed multiset (pair enumeration vs supremum folding), and the
reordering trace where it reports a pair *no* observed-order detector
flags at all (see ``tests/detectors/test_shb.py`` and
``docs/PREDICTION.md``).
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import BatchBuilder
from repro.engine.differential import cross_check_predict
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.forkjoin.interpreter import run
from repro.forkjoin.program import read, write
from repro.forkjoin.spawn_sync import cilk
from repro.obs.registry import MetricsRegistry
from tests.detectors.test_shb import REORDERING_TRACE, make_batch
from tests.engine.test_property_differential import (
    _cilk_program,
    spawn_sync_cases,
)

pytestmark = [pytest.mark.engine, pytest.mark.predict]

SLICE_SIZES = (1, 7, 64, 10_000)


def _flag_multiset(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


def _pair_multiset(races):
    """Full pair identity: accessor, partner, location and both kinds."""
    return Counter(
        (r.task, r.prior_repr, r.loc, r.kind, r.prior_kind) for r in races
    )


def _capture(case):
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    return builder.batch


@settings(max_examples=40, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    size=st.sampled_from(SLICE_SIZES),
)
def test_predicted_covers_observed(case, size):
    batch = _capture(case)
    sound, predicted, observed = cross_check_predict(
        batch, observed=("lattice2d",), batch_size=size
    )
    assert sound, (
        f"prediction missed observed races: predicted "
        f"{_flag_multiset(predicted)}, observed "
        f"{_flag_multiset(observed['lattice2d'])}"
    )


@settings(max_examples=15, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    shards=st.sampled_from((1, 2, 4)),
)
def test_sharded_predict_equals_serial_and_covers_observed(case, shards):
    """Lifecycle replication keeps every shard's vector clocks exact:
    sharded prediction reports the very same pairs as serial, and the
    union still covers the observed engine."""
    batch = _capture(case)
    serial = BatchEngine(predict=True, registry=MetricsRegistry())
    serial.ingest(batch)

    sharded = ShardedBatchEngine(
        shards, predict=True, registry=MetricsRegistry()
    )
    sharded.ingest_all(batch.slices(64))
    assert _pair_multiset(sharded.races()) == _pair_multiset(serial.races())

    ref = BatchEngine(registry=MetricsRegistry())
    ref.ingest(batch)
    assert _flag_multiset(ref.races()) <= _flag_multiset(sharded.races())


@settings(max_examples=25, deadline=None)
@given(case=spawn_sync_cases(max_leaves=8))
def test_predicted_set_is_batch_size_invariant(case):
    """The candidate windows carry all cross-batch state: slicing the
    stream anywhere yields the identical pair set."""
    batch = _capture(case)
    sets = []
    for size in SLICE_SIZES:
        engine = BatchEngine(predict=True, registry=MetricsRegistry())
        engine.ingest_all(batch.slices(size))
        sets.append(_pair_multiset(engine.races()))
    assert all(s == sets[0] for s in sets[1:])


def test_strictly_more_pairs_than_observed_multiset():
    """Two forked readers then a parent write: the observed engine
    folds both reads into one supremum and reports the write once;
    prediction reports one pair per reader."""
    builder = BatchBuilder()

    @cilk
    def reader(ctx):
        yield read("x")

    @cilk
    def program(ctx):
        yield from ctx.spawn(reader)
        yield from ctx.spawn(reader)
        yield write("x")
        yield from ctx.sync()

    run(program, observers=[builder])
    batch = builder.batch

    sound, predicted, observed = cross_check_predict(batch)
    assert sound
    pred = _flag_multiset(predicted)
    obs = _flag_multiset(observed["lattice2d"])
    assert obs <= pred
    assert sum(pred.values()) > sum(obs.values())  # strictly more: 2 vs 1


def test_reordering_trace_beats_every_observed_detector():
    """Set-level strictness: the REORDERING_TRACE carries a racing
    pair invisible to the observed-order detectors.  depa rejects this
    trace (it is not fork-first), so the cross-check runs against
    lattice2d alone."""
    batch = make_batch(REORDERING_TRACE)
    sound, predicted, observed = cross_check_predict(
        batch, observed=("lattice2d",)
    )
    assert sound
    pred = _flag_multiset(predicted)
    obs = _flag_multiset(observed["lattice2d"])
    assert obs <= pred
    assert set(pred) - set(obs)  # a flag no observed detector produced
