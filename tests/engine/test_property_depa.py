"""Property-based equivalence sweep for the DePa backend.

Random spawn-sync programs (the generator from the differential sweep,
executed depth-first by the interpreter -- exactly the fork-first
discipline the backend requires) ingested through
``BatchEngine(backend="depa")`` must flag exactly the accesses the
union-find kernel flags: same ``(task, loc, kind)`` multiset, same
count.  Slicing at awkward sizes exercises the scalar fallback (tiny
sub-batches), the segment kernel (large ones), and the structural
state carried across batch boundaries.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import BatchBuilder
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from tests.engine.test_property_differential import (
    _cilk_program,
    spawn_sync_cases,
)

pytestmark = pytest.mark.engine

SLICE_SIZES = (5, 64, 10_000)


def _flag_multiset(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


def _capture(case):
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    return builder.batch


@settings(max_examples=40, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    size=st.sampled_from(SLICE_SIZES),
)
def test_depa_equals_lattice2d(case, size):
    batch = _capture(case)
    ref = BatchEngine(registry=MetricsRegistry())
    ref.ingest(batch)

    alt = BatchEngine(backend="depa", registry=MetricsRegistry())
    alt.ingest_all(batch.slices(size))
    assert _flag_multiset(alt.races()) == _flag_multiset(ref.races())
    assert len(alt.races()) == len(ref.races())


@settings(max_examples=15, deadline=None)
@given(
    case=spawn_sync_cases(max_leaves=8),
    shards=st.sampled_from((2, 3)),
)
def test_sharded_depa_equals_lattice2d(case, shards):
    """Sharding composes with the backend: lifecycle replication keeps
    every shard's stream fork-first."""
    batch = _capture(case)
    ref = BatchEngine(registry=MetricsRegistry())
    ref.ingest(batch)

    alt = ShardedBatchEngine(
        shards, backend="depa", registry=MetricsRegistry()
    )
    alt.ingest_all(batch.slices(64))
    assert _flag_multiset(alt.races()) == _flag_multiset(ref.races())
