"""ParallelShardedEngine: multi-process detection changes nothing.

The engine's contract has three legs and each gets its own class here:

* **equivalence** -- for any worker count, the merged race multiset
  equals the serial :class:`BatchEngine`'s on the same trace, whether
  the batch arrives whole, sliced, or as a mapped trace file;
* **validation** -- the workers run a trusted kernel, so the parent
  must reject every malformed stream the exact kernel would, *before*
  shipping (both the vectorized and the small-batch fallback path);
* **crash safety** -- a killed worker surfaces as a clean
  :class:`DetectorError`, never a hang, and the pool shuts down.
"""

from __future__ import annotations

import os
import signal
from array import array
from collections import Counter

import pytest

from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    BatchBuilder,
    EventBatch,
)
from repro.engine.differential import cross_check_parallel
from repro.engine.ingest import BatchEngine
from repro.engine.parallel import ParallelShardedEngine
from repro.engine.tracefile import write_trace
from repro.errors import DetectorError, ProgramError
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from repro.workloads.racegen import bulk_access_program

pytestmark = pytest.mark.engine

WORKER_COUNTS = (1, 2, 4)

WORKLOAD = bulk_access_program(6, 4, 11, racy_rounds=(1, 4))


def _capture():
    builder = BatchBuilder()
    run(WORKLOAD, observers=[builder])
    return builder.batch, builder.interner


def _flag_multiset(races):
    return Counter((r.task, r.loc, r.kind) for r in races)


@pytest.fixture(scope="module")
def reference():
    batch, interner = _capture()
    engine = BatchEngine(interner=interner, registry=MetricsRegistry())
    engine.ingest(batch)
    return batch, interner, engine.races()


class TestEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_whole_batch_equals_serial(self, workers, reference):
        batch, interner, ref_races = reference
        with ParallelShardedEngine(
            workers, interner=interner, registry=MetricsRegistry()
        ) as engine:
            assert engine.ingest(batch) == len(batch)
            races = engine.races()
            assert _flag_multiset(races) == _flag_multiset(ref_races)
            assert len(races) > 0  # the workload seeds real races
            # Every access the parent routed was consumed by exactly
            # the worker it was routed to.
            assert engine.routing_counts() == engine.worker_access_counts()
            assert sum(engine.routing_counts()) == batch.access_count()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sliced_ingest_equals_serial(self, workers, reference):
        batch, interner, ref_races = reference
        with ParallelShardedEngine(
            workers, interner=interner, registry=MetricsRegistry()
        ) as engine:
            # 17 forces many odd-sized payloads through the small-batch
            # validation fallback as well as the vectorized one.
            engine.ingest_all(batch.slices(17))
            assert _flag_multiset(engine.races()) == _flag_multiset(
                ref_races
            )

    def test_reset_reuses_the_pool(self, reference):
        batch, interner, ref_races = reference
        with ParallelShardedEngine(
            2, interner=interner, registry=MetricsRegistry()
        ) as engine:
            engine.ingest(batch)
            first = engine.races()
            engine.reset()
            assert engine.events_ingested == 0
            engine.ingest(batch)
            second = engine.races()
            assert _flag_multiset(first) == _flag_multiset(second)
            assert _flag_multiset(second) == _flag_multiset(ref_races)

    def test_races_decode_locations(self, reference):
        batch, interner, ref_races = reference
        with ParallelShardedEngine(
            2, interner=interner, registry=MetricsRegistry()
        ) as engine:
            engine.ingest(batch)
            decoded = {r.loc for r in engine.races()}
        assert decoded == {r.loc for r in ref_races}

    def test_cross_check_parallel_agrees(self, reference):
        batch, interner, _ = reference
        agree, ref_races, par_races = cross_check_parallel(
            batch, interner, num_workers=3
        )
        assert agree
        assert len(ref_races) == len(par_races) > 0


class TestTraceIngest:
    def test_trace_equals_serial(self, reference, tmp_path):
        batch, interner, ref_races = reference
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        with ParallelShardedEngine(
            3, interner=interner, registry=MetricsRegistry()
        ) as engine:
            assert engine.ingest_trace(path) == len(batch)
            assert _flag_multiset(engine.races()) == _flag_multiset(
                ref_races
            )

    def test_adopts_the_trace_interner(self, reference, tmp_path):
        batch, interner, ref_races = reference
        path = str(tmp_path / "t.rtrc")
        write_trace(path, batch, interner)
        with ParallelShardedEngine(
            2, registry=MetricsRegistry()
        ) as engine:
            engine.ingest_trace(path)
            # Locations decode through the table read from the file.
            assert {r.loc for r in engine.races()} == {
                r.loc for r in ref_races
            }


def _structural_prefix(tasks: int) -> EventBatch:
    """``tasks`` forks by the root, so ids 1..tasks are live."""
    batch = EventBatch()
    for t in range(1, tasks + 1):
        batch.append(OP_FORK, 0, t)
    return batch


def _pad_with_steps(batch: EventBatch, to: int) -> EventBatch:
    """Push the batch over the vectorized-validation threshold."""
    while len(batch) < to:
        batch.append(OP_STEP, 0, 0)
    return batch


_BAD_STREAMS = {
    "unknown-task": lambda: (
        b := _structural_prefix(2),
        b.append(OP_READ, 7, 0),
    )[0],
    "fork-id-skew": lambda: (
        b := _structural_prefix(1),
        b.append(OP_FORK, 0, 5),
    )[0],
    "use-after-halt": lambda: (
        b := _structural_prefix(1),
        b.append(OP_HALT, 1, 0),
        b.append(OP_WRITE, 1, 0),
    )[0],
    "join-running": lambda: (
        b := _structural_prefix(2),
        b.append(OP_JOIN, 0, 2),
    )[0],
    "double-join": lambda: (
        b := _structural_prefix(2),
        b.append(OP_HALT, 2, 0),
        b.append(OP_JOIN, 0, 2),
        b.append(OP_JOIN, 0, 2),
    )[0],
    "double-halt": lambda: (
        b := _structural_prefix(1),
        b.append(OP_HALT, 1, 0),
        b.append(OP_HALT, 1, 0),
    )[0],
}


class TestValidation:
    """Both validation paths reject exactly what the exact kernel does."""

    @pytest.mark.parametrize("name", sorted(_BAD_STREAMS))
    @pytest.mark.parametrize("pad", (0, 128), ids=("py", "vectorized"))
    def test_malformed_stream_raises_before_shipping(self, name, pad):
        batch = _BAD_STREAMS[name]()
        if pad:
            batch = _pad_with_steps(batch, pad)
        # The serial engine rejects it...
        with pytest.raises(DetectorError):
            BatchEngine(registry=MetricsRegistry()).ingest(batch)
        # ...and so does the parallel parent, before any worker sees it.
        with ParallelShardedEngine(
            2, registry=MetricsRegistry()
        ) as engine:
            with pytest.raises(DetectorError):
                engine.ingest(batch)

    def test_valid_stream_spanning_batches_is_accepted(self):
        # Structural state must carry across ingest calls: the fork in
        # batch one legitimizes the access in batch two.
        first = _structural_prefix(1)
        second = EventBatch()
        second.append(OP_WRITE, 1, 0)
        second.append(OP_HALT, 1, 0)
        second.append(OP_JOIN, 0, 1)
        with ParallelShardedEngine(
            2, registry=MetricsRegistry()
        ) as engine:
            engine.ingest(first)
            engine.ingest(second)
            assert engine.races() == []


class TestCrashSafety:
    def test_killed_worker_raises_instead_of_hanging(self, reference):
        batch, interner, _ = reference
        engine = ParallelShardedEngine(
            2, interner=interner, registry=MetricsRegistry(), timeout=10.0
        )
        try:
            os.kill(engine._workers[1].pid, signal.SIGKILL)
            engine._workers[1].join(timeout=5.0)
            with pytest.raises(DetectorError, match="died"):
                engine.ingest(batch)
            # The abort closed the pool; the engine is unusable now.
            with pytest.raises(ProgramError, match="closed"):
                engine.ingest(batch)
        finally:
            engine.close()

    def test_close_is_idempotent_and_final(self, reference):
        batch, interner, _ = reference
        engine = ParallelShardedEngine(
            2, interner=interner, registry=MetricsRegistry()
        )
        engine.close()
        engine.close()
        with pytest.raises(ProgramError, match="closed"):
            engine.ingest(batch)


class TestLifecycle:
    def test_rejects_zero_workers(self):
        with pytest.raises(ProgramError):
            ParallelShardedEngine(0, registry=MetricsRegistry())

    def test_ingest_after_collect_requires_reset(self, reference):
        batch, interner, _ = reference
        with ParallelShardedEngine(
            2, interner=interner, registry=MetricsRegistry()
        ) as engine:
            engine.ingest(batch)
            engine.races()
            with pytest.raises(ProgramError, match="reset"):
                engine.ingest(batch)
            engine.reset()
            engine.ingest(batch)  # fine again

    def test_empty_batch_is_a_noop(self):
        with ParallelShardedEngine(
            2, registry=MetricsRegistry()
        ) as engine:
            assert engine.ingest(EventBatch()) == 0
            assert engine.races() == []


class TestMetrics:
    def test_worker_counters_merge_into_parent_registry(self, reference):
        batch, interner, ref_races = reference
        registry = MetricsRegistry()
        with ParallelShardedEngine(
            2, interner=interner, registry=registry
        ) as engine:
            engine.ingest(batch)
            races = engine.races()
        snap = registry.snapshot()["counters"]

        def series(name, **labels):
            body = ",".join(
                f'{k}="{v}"' for k, v in sorted(labels.items())
            )
            return snap[f"{name}{{{body}}}"]

        n = len(batch)
        accesses = batch.access_count()
        assert series("engine_events_total", engine="parallel") == n
        assert series("engine_races_total", engine="parallel") == len(
            races
        )
        # Parent routing vs worker consumption, series by series.
        for k in range(2):
            routed = series(
                "engine_shard_accesses_total",
                engine="parallel",
                shard=str(k),
            )
            consumed = series(
                "engine_worker_events_total",
                engine="parallel",
                shard=str(k),
            )
            # Each worker sees its accesses plus every structural event.
            assert consumed == routed + (n - accesses)
        assert (
            sum(
                series(
                    "engine_shard_accesses_total",
                    engine="parallel",
                    shard=str(k),
                )
                for k in range(2)
            )
            == accesses
        )
