"""BatchEngine / ShardedBatchEngine: the fast paths change nothing.

The strongest test in this package: the inlined kernel must leave a
:class:`RaceDetector2D` in *bit-identical* state to driving it event by
event -- same reports (down to ``op_index``), same union-find structure
and operation counters, same shadow accounting.
"""

from __future__ import annotations

import pytest

from repro.core.detector import RaceDetector2D
from repro.detectors.fasttrack import FastTrackDetector
from repro.engine.batch import BatchBuilder
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.errors import DetectorError, ProgramError
from repro.forkjoin.interpreter import run
from repro.workloads.racegen import bulk_access_program, conflicting_pair_program

pytestmark = pytest.mark.engine


def capture(body):
    builder = BatchBuilder()
    ex = run(body, observers=[builder], record_events=True)
    assert ex.events is not None
    return ex.events, builder.batch, builder.interner


def drive(events, det):
    from repro.engine.benchlib import drive_per_event

    drive_per_event(events, det)
    return det


BODY = bulk_access_program(4, 3, 12, racy_rounds=(0, 2))


class TestBatchEngine:
    def test_detects_the_conflicting_pair(self):
        _, batch, interner = capture(conflicting_pair_program("x"))
        engine = BatchEngine(interner=interner)
        assert engine.ingest(batch) == len(batch)
        [race] = engine.races()
        assert race.loc == "x"  # decoded back from the interned id

    def test_ordered_pair_is_clean(self):
        _, batch, interner = capture(
            conflicting_pair_program("x", ordered=True)
        )
        engine = BatchEngine(interner=interner)
        engine.ingest(batch)
        assert engine.races() == []

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_kernel_state_is_bit_identical_to_per_event(self, batch_size):
        events, batch, interner = capture(BODY)
        ref = RaceDetector2D(epoch_cache=False)
        ref.spawn_root()
        drive(events, ref)

        det = RaceDetector2D(epoch_cache=False)
        det.spawn_root()
        engine = BatchEngine(det, interner=interner)
        engine.ingest_all(batch.slices(batch_size))

        # Reports: everything except the dropped labels.
        assert [
            (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index)
            for r in engine.races()
        ] == [
            (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index)
            for r in ref.races
        ]
        assert len(ref.races) > 0
        assert det.op_index == ref.op_index
        # Union-find: structure AND op counters (the ablation benchmarks
        # read these; the kernel must not skew them).
        for attr in ("_parent", "_rank", "_label"):
            assert getattr(det._uf, attr) == getattr(ref._uf, attr)
        for attr in ("find_count", "union_count", "hop_count"):
            assert getattr(det._uf, attr) == getattr(ref._uf, attr)
        assert det._visited == ref._visited
        assert det._halted == ref._halted
        # Shadow accounting, modulo interning of the keys.
        decode = interner.location
        assert {
            decode(lid): cell for lid, cell in det.shadow.items()
        } == dict(ref.shadow.items())
        assert {
            decode(lid): n for lid, n in det.shadow._entries.items()
        } == ref.shadow._entries
        assert det.shadow.peak_entries_per_loc == ref.shadow.peak_entries_per_loc

    @pytest.mark.parametrize("batch_size", [13, 10_000])
    def test_epoch_cache_changes_no_verdicts_but_skips_finds(
        self, batch_size
    ):
        """The default (epoch-cached) kernel: same races down to
        ``op_index``, same shadow state, same union-find *sets* -- and
        measurably fewer ``find`` calls on repeat-heavy traffic."""
        # 30 accesses per task means each task revisits every shared
        # pool location several times: the same-epoch path must engage.
        body = bulk_access_program(3, 3, 30, racy_rounds=(1,))
        events, batch, interner = capture(body)
        ref = RaceDetector2D(epoch_cache=False)
        ref.spawn_root()
        drive(events, ref)

        engine = BatchEngine(interner=interner)  # default: epoch cache on
        engine.ingest_all(batch.slices(batch_size))
        det = engine.detector

        assert [
            (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index)
            for r in engine.races()
        ] == [
            (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index)
            for r in ref.races
        ]
        assert len(ref.races) > 0
        assert det.op_index == ref.op_index
        assert det._visited == ref._visited
        assert det._halted == ref._halted
        # Union-find: identical partition and labels (parent pointers may
        # differ -- skipped finds skip path compression too).
        assert det._uf._rank == ref._uf._rank
        assert det._uf._label == ref._uf._label
        n = len(det._uf._parent)
        assert [det._uf.find(i) for i in range(n)] == [
            ref._uf.find(i) for i in range(n)
        ]
        assert dict(det.shadow.items()) == {
            interner.intern(loc): cell for loc, cell in ref.shadow.items()
        }
        assert det.shadow._entries == {
            interner.intern(loc): v for loc, v in ref.shadow._entries.items()
        }
        assert det.shadow.peak_entries_per_loc == ref.shadow.peak_entries_per_loc
        # The whole point: repeats were served from the epoch cache.
        assert det._uf.find_count < ref._uf.find_count

    def test_epoch_cache_never_swallows_racing_repeats(self):
        """A task that races on a location twice is reported twice --
        racy accesses must never enter the epoch cache."""
        from repro.engine.batch import batch_from_events
        from repro.events import ForkEvent, HaltEvent, WriteEvent

        events = [
            ForkEvent(0, 1),
            WriteEvent(1, "x"),
            HaltEvent(1),
            WriteEvent(0, "x"),  # races with task 1's write
            WriteEvent(0, "x"),  # still racing: must be reported again
        ]
        ref = RaceDetector2D(epoch_cache=False)
        ref.spawn_root()
        drive(events, ref)
        assert len(ref.races) == 2

        batch, interner = batch_from_events(events)
        engine = BatchEngine(interner=interner)
        engine.ingest(batch)
        assert [
            (r.task, r.op_index) for r in engine.detector.races
        ] == [(r.task, r.op_index) for r in ref.races]

    def test_epoch_cache_invalidated_by_other_tasks(self):
        """A clean epoch for (t, kind) must be evicted when another task
        touches the location in between."""
        from repro.engine.batch import batch_from_events
        from repro.events import ForkEvent, HaltEvent, JoinEvent, WriteEvent

        events = [
            WriteEvent(0, "x"),
            WriteEvent(0, "x"),  # clean repeat: cached
            ForkEvent(0, 1),
            WriteEvent(1, "x"),  # child write, unordered with parent's next
            HaltEvent(1),
            WriteEvent(0, "x"),  # must be re-checked and flagged
            JoinEvent(0, 1),
        ]
        ref = RaceDetector2D(epoch_cache=False)
        ref.spawn_root()
        drive(events, ref)
        batch, interner = batch_from_events(events)
        engine = BatchEngine(interner=interner)
        engine.ingest(batch)
        assert [
            (r.task, r.op_index) for r in engine.detector.races
        ] == [(r.task, r.op_index) for r in ref.races]
        assert len(ref.races) == 1  # the parent write after the child's

    def test_generic_path_drives_other_detectors(self):
        events, batch, interner = capture(BODY)
        ref = FastTrackDetector()
        ref.on_root(0)
        drive(events, ref)
        det = FastTrackDetector()
        det.on_root(0)
        engine = BatchEngine(det, interner=interner)
        engine.ingest_all(batch.slices(32))
        assert len(engine.races()) == len(ref.races) > 0

    def test_kernel_rejects_malformed_streams_like_the_detector(self):
        from repro.engine.batch import OP_READ, OP_FORK, EventBatch

        bad = EventBatch()
        bad.append(OP_READ, 7, 0)  # unknown thread id
        with pytest.raises(DetectorError):
            BatchEngine().ingest(bad)

        mismatch = EventBatch()
        mismatch.append(OP_FORK, 0, 5)  # interpreter/detector id skew
        with pytest.raises(DetectorError):
            BatchEngine().ingest(mismatch)

    def test_unknown_opcode_rejected_on_every_ingest_path(self):
        """Corrupt batches (e.g. off the serve wire) must raise a typed
        ProgramError, never be absorbed as step events -- on the inlined
        kernel, the generic loop, and the vectorized depa kernel
        alike."""
        from repro.engine.batch import OP_READ, EventBatch

        bad = EventBatch()
        bad.append(99, 0, 0)

        # Inlined RaceDetector2D kernel.
        with pytest.raises(ProgramError, match="unknown opcode 99"):
            BatchEngine().ingest(bad)

        # Generic pre-bound loop (any other observer-protocol detector).
        ft = FastTrackDetector()
        ft.on_root(0)
        with pytest.raises(ProgramError, match="unknown opcode 99"):
            BatchEngine(ft).ingest(bad)

        # Vectorized depa kernel (and its scalar fallback for tiny
        # batches -- both paths covered in tests/engine/test_depa.py).
        with pytest.raises(ProgramError, match="unknown opcode 99"):
            BatchEngine(backend="depa").ingest(bad)

        # A valid prefix must not mask the corrupt row.
        prefixed = EventBatch()
        for _ in range(40):
            prefixed.append(OP_READ, 0, 0)
        prefixed.append(99, 0, 0)
        with pytest.raises(ProgramError, match="unknown opcode 99"):
            BatchEngine().ingest(prefixed)
        with pytest.raises(ProgramError, match="unknown opcode 99"):
            BatchEngine(backend="depa").ingest(prefixed)

    def test_literal_mode_falls_back_to_generic_path(self):
        events, batch, interner = capture(BODY)
        ref = RaceDetector2D(paper_figure6_literal=True)
        ref.spawn_root()
        drive(events, ref)
        det = RaceDetector2D(paper_figure6_literal=True)
        det.spawn_root()
        BatchEngine(det, interner=interner).ingest(batch)
        assert [(interner.location(r.loc), r.op_index) for r in det.races] == [
            (r.loc, r.op_index) for r in ref.races
        ]


class TestShardedBatchEngine:
    def test_rejects_zero_shards(self):
        with pytest.raises(ProgramError):
            ShardedBatchEngine(0)

    def test_lifecycle_replicated_accesses_partitioned(self):
        _, batch, interner = capture(BODY)
        engine = ShardedBatchEngine(3, interner=interner)
        subs = engine.split(batch)
        accesses = batch.access_count()
        lifecycle = len(batch) - accesses
        assert sum(s.access_count() for s in subs) == accesses
        for sub in subs:
            assert len(sub) - sub.access_count() == lifecycle
        for k, sub in enumerate(subs):
            from repro.engine.batch import OP_READ, OP_WRITE

            for op, b in zip(sub.ops, sub.b):
                if op == OP_READ or op == OP_WRITE:
                    assert b % 3 == k

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
    @pytest.mark.parametrize("batch_size", [None, 17])
    def test_verdicts_match_unsharded(self, num_shards, batch_size):
        _, batch, interner = capture(BODY)
        ref = BatchEngine(interner=interner)
        ref.ingest(batch)
        engine = ShardedBatchEngine(num_shards, interner=interner)
        if batch_size is None:
            engine.ingest(batch)
        else:
            engine.ingest_all(batch.slices(batch_size))
        assert engine.events_ingested == len(batch)
        key = lambda r: (r.task, r.loc, r.kind)  # noqa: E731
        assert sorted(map(key, engine.races())) == sorted(
            map(key, ref.races())
        )
        assert len(ref.races()) > 0
