"""Checkpoint round-trips and corruption refusal for repro.engine.snapshot.

Two obligations, mirroring the module's contract:

* a restored engine is *state-identical* to the saved one
  (:func:`state_digest` compares equal) and continued ingestion lands
  exactly where an uninterrupted run does;
* a damaged checkpoint -- truncated anywhere, any single bit flipped,
  lying headers, wrong kind -- raises
  :class:`~repro.errors.CheckpointError` and is never silently loaded.
"""

from __future__ import annotations

import os
import random
import struct
import zlib

import pytest

from repro.engine import snapshot as snap
from repro.engine.benchlib import build_workload, capture
from repro.engine.faults import corrupt_flip, corrupt_truncate
from repro.engine.ingest import BatchEngine
from repro.engine.parallel import ParallelShardedEngine
from repro.errors import CheckpointError

pytestmark = pytest.mark.engine


@pytest.fixture(scope="module")
def workload():
    """~20k events of racy racegen traffic: ``(batch, interner)``."""
    _events, batch, interner = capture(build_workload(20_000))
    return batch, interner


@pytest.fixture(scope="module")
def small_blob():
    """A compact checkpoint blob for the exhaustive corruption sweeps."""
    _events, batch, interner = capture(build_workload(300))
    engine = BatchEngine(interner=interner)
    engine.ingest(batch)
    return snap.engine_to_blob(engine, meta={"purpose": "corruption"})


def _race_key(engine):
    return sorted(
        (r.task, r.loc, r.kind.value, r.prior_kind.value, r.op_index)
        for r in engine.detector.races
    )


class TestRoundTrip:
    def test_restored_engine_is_state_identical(self, workload, tmp_path):
        batch, interner = workload
        engine = BatchEngine(interner=interner)
        engine.ingest(batch)
        path = str(tmp_path / "full.ckpt")
        nbytes = snap.save_checkpoint(engine, path, meta={"stage": "done"})
        assert nbytes == os.path.getsize(path)
        restored, meta = snap.load_checkpoint(path)
        assert meta == {"stage": "done"}
        assert snap.state_digest(restored) == snap.state_digest(engine)
        assert len(restored.detector.races) == len(engine.detector.races) > 0

    def test_resumed_ingestion_matches_uninterrupted(self, workload, tmp_path):
        batch, _interner = workload
        pieces = list(batch.slices(4096))
        cut = len(pieces) // 2

        uninterrupted = BatchEngine()
        uninterrupted.ingest_all(pieces)

        engine = BatchEngine()
        engine.ingest_all(pieces[:cut])
        path = str(tmp_path / "mid.ckpt")
        snap.save_checkpoint(engine, path)
        restored, _meta = snap.load_checkpoint(path)
        restored.ingest_all(pieces[cut:])

        assert snap.state_digest(restored) == snap.state_digest(uninterrupted)
        assert _race_key(restored) == _race_key(uninterrupted)

    def test_empty_engine_round_trips(self, tmp_path):
        engine = BatchEngine()
        path = str(tmp_path / "empty.ckpt")
        snap.save_checkpoint(engine, path)
        restored, meta = snap.load_checkpoint(path)
        assert meta == {}
        assert snap.state_digest(restored) == snap.state_digest(engine)

    def test_blob_round_trip_without_files(self, workload):
        batch, interner = workload
        engine = BatchEngine(interner=interner)
        engine.ingest(batch)
        restored, meta = snap.engine_from_blob(
            snap.engine_to_blob(engine, meta={"k": 1})
        )
        assert meta == {"k": 1}
        assert snap.state_digest(restored) == snap.state_digest(engine)


class TestCorruptionRefusal:
    def test_every_truncation_length_rejected(self, small_blob):
        # A torn write can stop at any byte; no prefix may load.
        for keep in range(len(small_blob)):
            with pytest.raises(CheckpointError):
                snap.engine_from_blob(small_blob[:keep])

    def test_single_bit_flips_rejected(self, small_blob):
        # The whole header plus a seeded sample of the payload; the CRC
        # covers the header prefix, so even the reserved pad bytes and
        # the endian flag are protected.
        rng = random.Random(20150613)
        offsets = list(range(64)) + [
            rng.randrange(len(small_blob)) for _ in range(200)
        ]
        for off in offsets:
            for bit in (0, 7) if off >= 64 else range(8):
                damaged = bytearray(small_blob)
                damaged[off] ^= 1 << bit
                with pytest.raises(CheckpointError):
                    snap.engine_from_blob(bytes(damaged))

    def test_trailing_garbage_rejected(self, small_blob):
        with pytest.raises(CheckpointError, match="payload"):
            snap.engine_from_blob(small_blob + b"\x00")

    def _with_fixed_crc(self, blob: bytes, off: int, value: int) -> bytes:
        """Patch one header byte and recompute the CRC, so the precise
        validation (not the CRC catch-all) is what must refuse it."""
        damaged = bytearray(blob)
        damaged[off] = value
        crc = zlib.crc32(
            bytes(damaged[snap._HEADER.size:]),
            zlib.crc32(bytes(damaged[:snap._HEADER_PREFIX.size])),
        )
        struct.pack_into("<I", damaged, snap._HEADER_PREFIX.size, crc)
        return bytes(damaged)

    def test_bad_magic_rejected(self, small_blob):
        with pytest.raises(CheckpointError, match="magic"):
            snap.engine_from_blob(self._with_fixed_crc(small_blob, 0, 0x58))

    def test_unsupported_version_rejected(self, small_blob):
        with pytest.raises(CheckpointError, match="version"):
            snap.engine_from_blob(self._with_fixed_crc(small_blob, 12, 99))

    def test_bad_endian_flag_rejected(self, small_blob):
        with pytest.raises(CheckpointError, match="endianness"):
            snap.engine_from_blob(self._with_fixed_crc(small_blob, 8, 7))

    def test_wrong_kind_rejected(self):
        blob = snap.pack_state({"kind": "parent"}, [])
        with pytest.raises(CheckpointError, match="not an engine"):
            snap.engine_from_blob(blob)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            snap.load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_fault_helpers_force_refusal(self, workload, tmp_path):
        batch, _interner = workload
        engine = BatchEngine()
        engine.ingest(batch)
        path = str(tmp_path / "victim.ckpt")
        rng = random.Random(7)

        snap.save_checkpoint(engine, path)
        corrupt_truncate(path, rng)
        with pytest.raises(CheckpointError):
            snap.load_checkpoint(path)

        snap.save_checkpoint(engine, path)
        corrupt_flip(path, rng)
        with pytest.raises(CheckpointError):
            snap.load_checkpoint(path)


class TestParallelCheckpoint:
    def test_parallel_round_trip(self, workload, tmp_path):
        batch, interner = workload
        pieces = list(batch.slices(4096))
        cut = len(pieces) // 2
        ckdir = str(tmp_path / "pool")

        with ParallelShardedEngine(2, interner=interner) as engine:
            engine.ingest_all(pieces[:cut])
            manifest = engine.save_checkpoint(ckdir, meta={"cut": cut})
            assert manifest["num_workers"] == 2
            engine.ingest_all(pieces[cut:])
            expected = sorted(
                (r.task, r.loc, r.kind.value) for r in engine.races()
            )

        with ParallelShardedEngine.restore(ckdir) as restored:
            restored.ingest_all(pieces[cut:])
            got = sorted(
                (r.task, r.loc, r.kind.value) for r in restored.races()
            )
        assert got == expected and len(got) > 0

    def test_parallel_segment_corruption_rejected(self, workload, tmp_path):
        batch, interner = workload
        ckdir = str(tmp_path / "pool")
        with ParallelShardedEngine(2, interner=interner) as engine:
            engine.ingest(batch)
            engine.save_checkpoint(ckdir)
        victim = os.path.join(ckdir, "shard-0.ckpt")
        assert os.path.exists(victim)
        corrupt_flip(victim, random.Random(11))
        with pytest.raises(CheckpointError):
            ParallelShardedEngine.restore(ckdir)

    def test_parallel_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            ParallelShardedEngine.restore(str(tmp_path / "nothing"))
