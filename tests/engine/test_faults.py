"""The fault-injection harness itself: corruption helpers, the
killable serve subprocess, and one full soak round.

These are *serve*-marked alongside the engine mark: the subprocess
tests exercise the CLI entry and the wire client end to end.
"""

from __future__ import annotations

import json
import random
import socket
import subprocess
import sys

import pytest

from repro.engine import faults
from repro.errors import WorkloadError

pytestmark = [pytest.mark.engine, pytest.mark.serve]


class TestCorruptionHelpers:
    def test_truncate_shortens_in_place(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(bytes(range(200)))
        keep = faults.corrupt_truncate(str(path), random.Random(1))
        assert 1 <= keep < 200
        assert path.stat().st_size == keep
        assert path.read_bytes() == bytes(range(keep))

    def test_truncate_refuses_tiny_files(self, tmp_path):
        path = tmp_path / "tiny"
        path.write_bytes(b"x")
        with pytest.raises(WorkloadError, match="too small"):
            faults.corrupt_truncate(str(path), random.Random(1))

    def test_flip_damages_without_resizing(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(256))
        path.write_bytes(original)
        offsets = faults.corrupt_flip(str(path), random.Random(2), flips=4)
        assert len(offsets) == 4
        damaged = path.read_bytes()
        assert len(damaged) == len(original) and damaged != original

    def test_corrupt_file_is_seeded(self, tmp_path):
        for seed in (3, 4):
            a, b = tmp_path / f"a{seed}", tmp_path / f"b{seed}"
            a.write_bytes(bytes(range(128)))
            b.write_bytes(bytes(range(128)))
            ma = faults.corrupt_file(str(a), random.Random(seed))
            mb = faults.corrupt_file(str(b), random.Random(seed))
            assert ma == mb and a.read_bytes() == b.read_bytes()


class TestServerProcess:
    def test_lifecycle_and_sigkill(self, tmp_path):
        port = faults.free_port()
        with faults.ServerProcess(port, str(tmp_path / "ck")) as server:
            assert server.alive() and server.pid is not None
            with socket.create_connection(("127.0.0.1", port), timeout=5):
                pass
            server.kill()
            assert not server.alive()
            # Restarting on the same port works (SIGKILL freed it).
            server2 = faults.ServerProcess(port, str(tmp_path / "ck")).start()
            assert server2.alive()
            server2.terminate()
            assert not server2.alive()

    def test_double_start_rejected(self, tmp_path):
        port = faults.free_port()
        with faults.ServerProcess(port, str(tmp_path / "ck")) as server:
            with pytest.raises(WorkloadError, match="already running"):
                server.start()


class TestSoak:
    def test_one_round_end_to_end(self, tmp_path):
        lines = []
        stats = faults.run_soak(
            0.01,
            seed=20150613,
            accesses=1_500,
            batch_size=256,
            checkpoint_interval=2,
            log=lines.append,
        )
        assert stats["rounds"] == 1
        assert stats["kills"] == 1
        assert stats["corruptions_rejected"] == 1
        assert stats["depa_sessions"] == 1
        assert stats["depa_resume_refusals"] == 1
        assert stats["events"] > 0 and stats["races"] > 0
        assert lines and "ok" in lines[0]

    def test_module_entry_emits_stats_json(self, tmp_path):
        out = tmp_path / "stats.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.engine.faults",
                "--seconds", "0.01", "--seed", "7",
                "--accesses", "1500", "--batch-size", "256",
                "--json", str(out),
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout.strip().splitlines()[-1])
        assert stats["rounds"] >= 1 and stats["seed"] == 7
        assert json.loads(out.read_text()) == stats
