"""Tests for SP-graph construction and recognition."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.lattice.digraph import Digraph
from repro.lattice.generators import figure2_lattice, grid_digraph
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional
from repro.lattice.series_parallel import (
    is_series_parallel,
    leaf,
    leaf_count,
    parallel,
    random_sp_tree,
    series,
    sp_digraph,
)


class TestTrees:
    def test_constructors_validate_arity(self):
        with pytest.raises(WorkloadError):
            series(leaf())
        with pytest.raises(WorkloadError):
            parallel(leaf())

    def test_leaf_count(self):
        t = series(leaf(), parallel(leaf(), leaf(), leaf()))
        assert leaf_count(t) == 4

    def test_random_tree_leaf_count(self):
        rng = random.Random(1)
        assert leaf_count(random_sp_tree(9, rng)) == 9
        with pytest.raises(WorkloadError):
            random_sp_tree(0, rng)


class TestDigraphs:
    def test_single_leaf(self):
        g = sp_digraph(leaf())
        assert sorted(g.arcs()) == [(0, 1)]

    def test_series_chains(self):
        g = sp_digraph(series(leaf(), leaf(), leaf()))
        assert g.vertex_count == 4 and g.arc_count == 3
        assert is_series_parallel(g)

    def test_parallel_subdivides_bare_arcs(self):
        g = sp_digraph(parallel(leaf(), leaf()))
        # Two bare arcs in parallel would be a multigraph; subdivision
        # inserts a middle vertex on each branch.
        assert g.vertex_count == 4
        assert g.arc_count == 4
        assert is_series_parallel(g)

    def test_figure1_shape(self):
        """Figure 1's task graph: S(P(A, B), P(C, D)) around a middle."""
        t = series(parallel(leaf(), leaf()), parallel(leaf(), leaf()))
        g = sp_digraph(t)
        assert is_series_parallel(g)
        p = Poset(g)
        assert p.is_lattice() and is_two_dimensional(p)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), leaves=st.integers(1, 12))
    def test_random_sp_digraphs_recognised_and_2d(self, seed, leaves):
        g = sp_digraph(random_sp_tree(leaves, random.Random(seed)))
        assert is_series_parallel(g)
        p = Poset(g)
        assert p.is_lattice()
        assert is_two_dimensional(p)


class TestRecognition:
    def test_figure2_not_sp(self):
        """The paper's Figure 2 graph is the canonical 2D-but-not-SP case."""
        assert not is_series_parallel(figure2_lattice())

    def test_grid_not_sp(self):
        assert not is_series_parallel(grid_digraph(3, 3))
        assert is_series_parallel(grid_digraph(1, 5))  # a chain is SP

    def test_multi_source_rejected(self):
        assert not is_series_parallel(Digraph([(0, 2), (1, 2)]))

    def test_diamond_is_sp(self):
        from repro.lattice.generators import diamond

        assert is_series_parallel(diamond())

    def test_single_vertex(self):
        g = Digraph()
        g.add_vertex(0)
        assert is_series_parallel(g)

    def test_n_graph_rejected(self):
        # The "N": the minimal non-SP pattern, completed to an st-graph.
        g = Digraph(
            [("s", "a"), ("s", "b"), ("a", "c"), ("a", "d"), ("b", "d"),
             ("c", "t"), ("d", "t")]
        )
        assert not is_series_parallel(g)
