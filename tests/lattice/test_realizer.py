"""Tests for Dushnik-Miller realizers and the dimension-2 machinery."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, NotATwoDimensionalLattice
from repro.lattice.digraph import Digraph
from repro.lattice.generators import (
    boolean_lattice,
    chain,
    diamond,
    grid_digraph,
    standard_example,
)
from repro.lattice.poset import Poset
from repro.lattice.realizer import (
    is_realizer_of,
    is_two_dimensional,
    poset_from_realizer,
    realizer_of,
    transitive_orientation,
)

from tests.conftest import two_dim_lattices


class TestPosetFromRealizer:
    def test_identity_pair_gives_chain(self):
        g = poset_from_realizer([0, 1, 2], [0, 1, 2])
        assert sorted(g.arcs()) == [(0, 1), (1, 2)]

    def test_reversed_pair_gives_antichain(self):
        g = poset_from_realizer([0, 1, 2], [2, 1, 0])
        assert list(g.arcs()) == []

    def test_result_is_cover_digraph(self):
        g = poset_from_realizer([0, 1, 2, 3], [0, 2, 1, 3])
        # 0 < everything, 3 > everything, 1 || 2.
        assert sorted(g.arcs()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_rejects_mismatched_sequences(self):
        with pytest.raises(GraphError):
            poset_from_realizer([0, 1], [0, 2])
        with pytest.raises(GraphError):
            poset_from_realizer([0, 0], [0, 0])

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 12), seed=st.integers(0, 2**32 - 1))
    def test_roundtrip_random_permutation(self, n, seed):
        """poset_from_realizer then realizer_of must re-realize the order."""
        rng = random.Random(seed)
        l1 = list(range(n))
        l2 = list(range(n))
        rng.shuffle(l2)
        poset = Poset(poset_from_realizer(l1, l2))
        assert is_realizer_of(poset, l1, l2)
        r1, r2 = realizer_of(poset)
        assert is_realizer_of(poset, r1, r2)


class TestRealizerOf:
    @pytest.mark.parametrize(
        "graph_factory",
        [lambda: chain(5), diamond, lambda: grid_digraph(3, 4)],
    )
    def test_positive_families(self, graph_factory):
        poset = Poset(graph_factory())
        l1, l2 = realizer_of(poset)
        assert is_realizer_of(poset, l1, l2)

    def test_figure3(self, fig3_poset):
        l1, l2 = realizer_of(fig3_poset)
        assert is_realizer_of(fig3_poset, l1, l2)

    def test_figure2(self, fig2_graph):
        poset = Poset(fig2_graph)
        l1, l2 = realizer_of(poset)
        assert is_realizer_of(poset, l1, l2)

    def test_boolean_lattice_b3_rejected(self):
        """B_3 is a lattice of order dimension 3 (the canonical witness)."""
        with pytest.raises(NotATwoDimensionalLattice):
            realizer_of(Poset(boolean_lattice(3)))

    def test_standard_example_s3_rejected(self):
        with pytest.raises(NotATwoDimensionalLattice):
            realizer_of(Poset(standard_example(3)))

    def test_standard_example_s2_accepted(self):
        poset = Poset(standard_example(2))
        l1, l2 = realizer_of(poset)
        assert is_realizer_of(poset, l1, l2)

    def test_b2_accepted(self):
        poset = Poset(boolean_lattice(2))
        assert is_two_dimensional(poset)

    def test_antichain(self):
        g = Digraph()
        for i in range(4):
            g.add_vertex(i)
        poset = Poset(g)
        l1, l2 = realizer_of(poset)
        assert list(reversed(l1)) == l2 or is_realizer_of(poset, l1, l2)

    @settings(max_examples=60, deadline=None)
    @given(graph=two_dim_lattices())
    def test_generated_lattices_are_2d(self, graph):
        poset = Poset(graph)
        l1, l2 = realizer_of(poset)
        assert is_realizer_of(poset, l1, l2)


class TestTransitiveOrientation:
    def test_triangle_orientable(self):
        edges = {frozenset(e) for e in [(0, 1), (1, 2), (0, 2)]}
        oriented = transitive_orientation([0, 1, 2], edges)
        assert oriented is not None
        assert len(oriented) == 3

    def test_c5_not_orientable(self):
        """The 5-cycle is the smallest non-comparability graph."""
        edges = {frozenset((i, (i + 1) % 5)) for i in range(5)}
        out = transitive_orientation(list(range(5)), edges)
        assert out is None

    def test_empty_graph(self):
        assert transitive_orientation([0, 1], set()) == {}

    def test_path_p4(self):
        edges = {frozenset(e) for e in [(0, 1), (1, 2), (2, 3)]}
        oriented = transitive_orientation([0, 1, 2, 3], edges)
        assert oriented is not None

    def test_is_two_dimensional_wrapper(self, fig3_poset):
        assert is_two_dimensional(fig3_poset)
        assert not is_two_dimensional(Poset(boolean_lattice(3)))
