"""Cross-validation of dimension-2 against graph planarity (Platt).

Platt's theorem (1976): a finite lattice has a planar (Hasse) diagram
iff its cover graph **plus an edge from bottom to top** is a planar
undirected graph.  Combined with Baker-Fishburn-Roberts (planar lattice
⟺ dimension ≤ 2), this gives an entirely independent referee for our
realizer-based dimension test: ``networkx.check_planarity`` on the
augmented cover graph must agree with ``is_two_dimensional`` on every
bounded lattice.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.lattice.generators import boolean_lattice, figure3_lattice
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional

from tests.conftest import two_dim_lattices


def platt_planar(poset: Poset) -> bool:
    """Platt's criterion: cover graph + (bottom, top) edge is planar."""
    bottom, top = poset.bottom(), poset.top()
    assert bottom is not None and top is not None, "needs a bounded lattice"
    g = nx.Graph()
    g.add_nodes_from(poset.vertices())
    g.add_edges_from(poset.covers())
    if not g.has_edge(bottom, top):
        g.add_edge(bottom, top)
    ok, _ = nx.check_planarity(g)
    return ok


class TestPlattAgreement:
    def test_figure3(self):
        poset = Poset(figure3_lattice())
        assert platt_planar(poset) and is_two_dimensional(poset)

    def test_b3_rejected_by_both(self):
        poset = Poset(boolean_lattice(3))
        assert not platt_planar(poset)
        assert not is_two_dimensional(poset)

    def test_b4_rejected_by_both(self):
        poset = Poset(boolean_lattice(4))
        assert not platt_planar(poset)
        assert not is_two_dimensional(poset)

    @settings(max_examples=80, deadline=None)
    @given(graph=two_dim_lattices())
    def test_generated_lattices_agree(self, graph):
        poset = Poset(graph)
        assert poset.is_lattice()
        assert platt_planar(poset) == is_two_dimensional(poset) == True  # noqa: E712

    def test_task_graphs_agree(self):
        from repro.forkjoin import build_task_graph, run
        from repro.workloads.synthetic import SyntheticConfig, random_program

        for seed in range(6):
            cfg = SyntheticConfig(seed=seed, max_tasks=12, ops_per_task=4)
            ex = run(random_program(cfg), record_events=True)
            tg = build_task_graph(ex.events)
            assert platt_planar(tg.poset)
