"""Tests for dominance drawings / planar monotone diagrams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import GraphError
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram, _segments_intersect
from repro.lattice.generators import figure3_diagram, grid_diagram
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices


class TestConstruction:
    def test_from_realizer_builds_cover_graph(self):
        d = Diagram.from_realizer([0, 1, 2, 3], [0, 2, 1, 3])
        assert sorted(d.graph.arcs()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_missing_coordinates_rejected(self):
        g = Digraph([(0, 1)])
        with pytest.raises(GraphError, match="no coordinates"):
            Diagram(g, {0: (0, 0)})

    def test_non_monotone_coordinates_rejected(self):
        g = Digraph([(0, 1)])
        with pytest.raises(GraphError, match="monotone"):
            Diagram(g, {0: (1, 1), 1: (0, 0)})

    def test_from_poset_preserves_vertices(self, fig3_poset):
        d = Diagram.from_poset(fig3_poset)
        assert set(d.graph.vertices()) == set(fig3_poset.vertices())


class TestGeometry:
    def test_screen_is_downward_monotone(self, fig3_diagram):
        for s, t in fig3_diagram.graph.arcs():
            assert fig3_diagram.screen(s)[1] < fig3_diagram.screen(t)[1]

    def test_figure3_left_to_right_orientation(self, fig3_diagram):
        """Pinned orientation: at vertex 1, child 2 is left of child 4
        (the traversal of Figure 4 visits (1,2) before (1,4))."""
        assert fig3_diagram.succs_left_to_right(1) == [2, 4]
        assert fig3_diagram.succs_left_to_right(2) == [3, 5]
        assert fig3_diagram.succs_left_to_right(5) == [6, 8]

    def test_rightmost_path_is_last_arcs(self, fig3_diagram):
        # Rightmost path from 1: 1 -> 4 -> 7 -> 8 -> 9 (solid arcs of
        # Figure 4's forest).
        assert fig3_diagram.rightmost_path_from(1) == [1, 4, 7, 8, 9]

    def test_leftmost_path(self, fig3_diagram):
        assert fig3_diagram.leftmost_path_from(1) == [1, 2, 3, 6, 9]

    def test_preds_left_to_right_count(self, fig3_diagram):
        assert set(fig3_diagram.preds_left_to_right(5)) == {2, 4}


class TestPlanarity:
    def test_figure3_planar(self, fig3_diagram):
        fig3_diagram.check_planar()
        assert fig3_diagram.is_planar()

    def test_grids_planar(self):
        assert grid_diagram(4, 5).is_planar()

    @settings(max_examples=50, deadline=None)
    @given(graph=two_dim_lattices())
    def test_generated_diagrams_planar(self, graph):
        """Baker et al.: dimension <= 2 implies a planar monotone
        diagram -- the dominance drawing must therefore not cross."""
        d = Diagram.from_poset(Poset(graph))
        d.check_planar()

    def test_crossing_detected(self):
        # An artificial non-planar embedding: the screen segments of
        # arcs 0->3 and 1->2 form an X crossing at (1, 3).
        g = Digraph([(0, 3), (1, 2)])
        d = Diagram(
            g, {0: (0, 0), 3: (2, 4), 1: (-1, 1), 2: (3, 3)}
        )
        assert not d.is_planar()
        with pytest.raises(GraphError, match="cross"):
            d.check_planar()


class TestSegmentIntersection:
    def test_proper_crossing(self):
        assert _segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not _segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_at_midpoint(self):
        assert _segments_intersect((0, 0), (2, 0), (1, 0), (1, 2))

    def test_collinear_overlap(self):
        assert _segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not _segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))


class TestTransitiveArcsInput:
    def test_from_poset_reduces_transitive_arcs(self):
        """A digraph with redundant (transitive) arcs still yields a
        valid cover-diagram: the reduction happens inside from_poset."""
        from repro.lattice.digraph import Digraph

        g = Digraph([(0, 1), (1, 2), (0, 2)])  # (0,2) is transitive
        d = Diagram.from_poset(Poset(g))
        assert sorted(d.graph.arcs()) == [(0, 1), (1, 2)]
        d.check_planar()
