"""Tests for the ordered-adjacency digraph container."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.lattice.digraph import Digraph


class TestConstruction:
    def test_add_arc_creates_vertices(self):
        g = Digraph()
        g.add_arc("a", "b")
        assert "a" in g and "b" in g
        assert g.vertex_count == 2 and g.arc_count == 1

    def test_init_from_arc_list(self):
        g = Digraph([(1, 2), (2, 3)])
        assert list(g.arcs()) == [(1, 2), (2, 3)]

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Digraph([(1, 1)])

    def test_duplicate_arc_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Digraph([(1, 2), (1, 2)])

    def test_add_vertex_idempotent(self):
        g = Digraph()
        g.add_vertex("v")
        g.add_vertex("v")
        assert g.vertex_count == 1

    def test_adjacency_preserves_insertion_order(self):
        g = Digraph([(0, 2), (0, 1), (3, 1)])
        assert g.succs(0) == [2, 1]
        assert g.preds(1) == [0, 3]


class TestQueries:
    def test_degrees(self):
        g = Digraph([(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.has_arc(0, 1) and not g.has_arc(1, 0)

    def test_sources_and_sinks(self):
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.sources() == [0]
        assert g.sinks() == [3]

    def test_reachable_from(self):
        g = Digraph([(0, 1), (1, 2), (3, 4)])
        assert g.reachable_from(0) == {0, 1, 2}
        assert g.reachable_from(3) == {3, 4}


class TestTopologicalOrder:
    def test_respects_arcs(self):
        g = Digraph([(2, 1), (1, 0), (2, 0)])
        order = g.topological_order()
        assert order.index(2) < order.index(1) < order.index(0)

    def test_cycle_detected(self):
        g = Digraph([(0, 1), (1, 2), (2, 0)])
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()
        assert not g.is_acyclic()

    def test_deterministic_tie_breaking(self):
        g = Digraph()
        for v in ("b", "a", "c"):
            g.add_vertex(v)
        assert g.topological_order() == ["b", "a", "c"]


class TestTransitiveReduction:
    def test_removes_shortcut(self):
        g = Digraph([(0, 1), (1, 2), (0, 2)])
        red = g.transitive_reduction()
        assert sorted(red.arcs()) == [(0, 1), (1, 2)]

    def test_keeps_diamond(self):
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        red = g.transitive_reduction()
        assert sorted(red.arcs()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_matches_networkx(self):
        import networkx as nx
        import random

        rng = random.Random(5)
        for _ in range(20):
            n = rng.randint(2, 12)
            arcs = set()
            for _ in range(rng.randint(1, 3 * n)):
                a, b = rng.sample(range(n), 2)
                if a < b:
                    arcs.add((a, b))
            if not arcs:
                continue
            g = Digraph(sorted(arcs))
            ours = set(g.transitive_reduction().arcs())
            nxg = nx.DiGraph(sorted(arcs))
            theirs = set(nx.transitive_reduction(nxg).edges())
            assert ours == theirs

    def test_copy_is_independent(self):
        g = Digraph([(0, 1)])
        h = g.copy()
        h.add_arc(1, 2)
        assert g.arc_count == 1 and h.arc_count == 2
