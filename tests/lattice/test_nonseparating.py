"""Tests for non-separating traversal construction (Definition 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.traversal import (
    check_delayed_wellformed,
    check_topological,
    check_wellformed,
)
from repro.errors import GraphError, TraversalError
from repro.events import Arc, Loop, format_traversal
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram
from repro.lattice.generators import figure3_diagram, grid_diagram
from repro.lattice.nonseparating import (
    delayed_nonseparating_traversal,
    nonseparating_traversal,
)
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices

FIGURE4_CAPTION = (
    "(1, 1)(1, 2)(2, 2)(2, 3)(3, 3)(3, 6)(2, 5)(1, 4)(4, 4)(4, 5)(5, 5)"
    "(5, 6)(6, 6)(6, 9)(5, 8)(4, 7)(7, 7)(7, 8)(8, 8)(8, 9)(9, 9)"
)


class TestFigure4:
    def test_traversal_matches_caption_verbatim(self, fig3_diagram):
        items = nonseparating_traversal(fig3_diagram)
        assert format_traversal(items) == FIGURE4_CAPTION

    def test_last_arcs_form_rightmost_tree(self, fig3_diagram):
        """Figure 4 draws the last-arcs solid: they are (1,4),(2,5),
        (3,6),(4,7),(5,8),(6,9),(7,8),(8,9)."""
        items = nonseparating_traversal(fig3_diagram)
        last = {(a.src, a.dst) for a in items if isinstance(a, Arc) and a.last}
        assert last == {
            (1, 4), (2, 5), (3, 6), (4, 7), (5, 8), (6, 9), (7, 8), (8, 9),
        }

    def test_item_count(self, fig3_diagram):
        items = nonseparating_traversal(fig3_diagram)
        arcs = sum(isinstance(x, Arc) for x in items)
        loops = sum(isinstance(x, Loop) for x in items)
        assert (arcs, loops) == (12, 9)


class TestProperties:
    def test_loop_right_after_final_incoming_arc(self, fig3_diagram):
        """Depth-first: a vertex is visited immediately after its last
        incoming arc is traversed."""
        items = nonseparating_traversal(fig3_diagram)
        for i, item in enumerate(items):
            if isinstance(item, Loop) and i > 0:
                prev = items[i - 1]
                assert isinstance(prev, Arc) and prev.dst == item.vertex

    @settings(max_examples=60, deadline=None)
    @given(graph=two_dim_lattices())
    def test_random_lattices_valid(self, graph):
        poset = Poset(graph)
        diagram = Diagram.from_poset(poset)
        items = nonseparating_traversal(diagram)
        check_wellformed(items)
        check_topological(items, poset.leq)

    def test_grid_traversal_valid(self):
        d = grid_diagram(3, 4)
        items = nonseparating_traversal(d)
        check_wellformed(items)
        check_topological(items, Poset(d.graph).leq)

    def test_single_vertex(self):
        g = Digraph()
        g.add_vertex("v")
        d = Diagram(g, {"v": (0, 0)})
        assert nonseparating_traversal(d) == [Loop("v")]


class TestDelayed:
    def test_delayed_default_oracle(self, fig3_diagram):
        items = delayed_nonseparating_traversal(fig3_diagram)
        check_delayed_wellformed(items)

    @settings(max_examples=40, deadline=None)
    @given(graph=two_dim_lattices())
    def test_delayed_random(self, graph):
        d = Diagram.from_poset(Poset(graph))
        check_delayed_wellformed(delayed_nonseparating_traversal(d))


class TestErrors:
    def test_disconnected_detected(self):
        g = Digraph()
        g.add_arc(0, 1)
        g.add_vertex(2)
        d = Diagram(g, {0: (0, 0), 1: (1, 1), 2: (2, 2)})
        # vertex 2 is a second source: multi-source is allowed, but a
        # vertex unreachable by arc-count bookkeeping must be visited.
        items = nonseparating_traversal(d)
        assert sum(isinstance(x, Loop) for x in items) == 3

    def test_empty_graph_rejected(self):
        g = Digraph()
        d = Diagram(g, {})
        with pytest.raises(GraphError, match="no source"):
            nonseparating_traversal(d)
