"""Tests for the brute-force poset oracle."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.digraph import Digraph
from repro.lattice.generators import boolean_lattice, diamond, grid_digraph
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices


class TestOrderQueries:
    def test_leq_reflexive_on_figure3(self, fig3_poset):
        for v in fig3_poset.vertices():
            assert fig3_poset.leq(v, v)
            assert not fig3_poset.lt(v, v)

    def test_leq_matches_networkx_reachability(self, fig3_graph, fig3_poset):
        nxg = nx.DiGraph(list(fig3_graph.arcs()))
        closure = nx.transitive_closure(nxg, reflexive=True)
        for x in fig3_poset.vertices():
            for y in fig3_poset.vertices():
                assert fig3_poset.leq(x, y) == closure.has_edge(x, y)

    def test_up_down_sets(self, fig3_poset):
        assert fig3_poset.up_set(5) == frozenset({5, 6, 8, 9})
        assert fig3_poset.down_set(5) == frozenset({1, 2, 4, 5})

    def test_comparable(self, fig3_poset):
        assert fig3_poset.comparable(1, 9)
        assert not fig3_poset.comparable(3, 4)

    def test_index_is_topological(self, fig3_poset):
        for x, y in fig3_poset.graph.arcs():
            assert fig3_poset.index(x) < fig3_poset.index(y)


class TestSupInf:
    def test_figure3_examples(self, fig3_poset):
        assert fig3_poset.sup(3, 5) == 6
        assert fig3_poset.sup(1, 5) == 5
        assert fig3_poset.sup(2, 4) == 5
        assert fig3_poset.inf(3, 5) == 2
        assert fig3_poset.inf(6, 8) == 5

    def test_diamond(self):
        p = Poset(diamond())
        assert p.sup(1, 2) == 3
        assert p.inf(1, 2) == 0

    def test_missing_supremum_is_none(self):
        # Two maximal elements: {1,2} has no upper bound at all.
        p = Poset(Digraph([(0, 1), (0, 2)]))
        assert p.sup(1, 2) is None
        assert p.inf(1, 2) == 0

    def test_ambiguous_supremum_is_none(self):
        # x,y below both a,b (a || b): minimal upper bounds not unique.
        g = Digraph([("x", "a"), ("x", "b"), ("y", "a"), ("y", "b")])
        p = Poset(g)
        assert p.sup("x", "y") is None
        assert p.inf("a", "b") is None

    def test_sup_of_set(self, fig3_poset):
        assert fig3_poset.sup_of_set([2, 4]) == 5
        assert fig3_poset.sup_of_set([3, 4]) == 6
        assert fig3_poset.sup_of_set([1]) == 1
        assert fig3_poset.sup_of_set([]) == 1  # unit: the minimum

    def test_inf_of_set(self, fig3_poset):
        assert fig3_poset.inf_of_set([6, 8]) == 5
        assert fig3_poset.inf_of_set([]) == 9  # unit: the maximum

    def test_sup_comparable_pair(self, fig3_poset):
        assert fig3_poset.sup(2, 6) == 6
        assert fig3_poset.inf(2, 6) == 2

    @settings(max_examples=40, deadline=None)
    @given(graph=two_dim_lattices(), data=st.data())
    def test_sup_is_least_upper_bound(self, graph, data):
        p = Poset(graph)
        vs = p.vertices()
        x = data.draw(st.sampled_from(vs))
        y = data.draw(st.sampled_from(vs))
        s = p.sup(x, y)
        assert s is not None  # generated graphs are lattices
        assert p.leq(x, s) and p.leq(y, s)
        for z in vs:
            if p.leq(x, z) and p.leq(y, z):
                assert p.leq(s, z)


class TestLatticeProperty:
    def test_figure3_is_lattice(self, fig3_poset):
        assert fig3_poset.is_lattice()

    def test_grids_are_lattices(self):
        assert Poset(grid_digraph(3, 4)).is_lattice()

    def test_boolean_lattice_is_lattice(self):
        assert Poset(boolean_lattice(3)).is_lattice()

    def test_two_maximal_elements_is_not_lattice(self):
        assert not Poset(Digraph([(0, 1), (0, 2)])).is_lattice()

    def test_ambiguous_bounds_is_not_lattice(self):
        g = Digraph([("x", "a"), ("x", "b"), ("y", "a"), ("y", "b")])
        assert not Poset(g).is_lattice()


class TestClosure:
    def test_closure_of_incomparable_pair(self, fig3_poset):
        # closure({3, 4}) must contain sup=6 and inf=1, then their
        # consequences.
        cl = fig3_poset.closure({3, 4})
        assert {3, 4, 6, 1} <= cl

    def test_closure_of_chain_is_itself(self, fig3_poset):
        assert fig3_poset.closure({1, 2, 3}) == frozenset({1, 2, 3})

    def test_closure_matches_paper_figure4_remark(self, fig3_poset):
        """Section 3: after the prefix ending in (5,5), vertex 6 belongs
        to the closure of the visited prefix {1,2,3,4,5}."""
        cl = fig3_poset.closure({1, 2, 3, 4, 5})
        assert 6 in cl
        assert 7 not in cl

    def test_closure_rejects_unknown_vertices(self, fig3_poset):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            fig3_poset.closure({42})


class TestStructure:
    def test_bottom_top(self, fig3_poset):
        assert fig3_poset.bottom() == 1
        assert fig3_poset.top() == 9

    def test_covers_match_reduction(self, fig3_graph, fig3_poset):
        assert set(fig3_poset.covers()) == set(fig3_graph.arcs())

    def test_incomparable_pairs(self, fig3_poset):
        pairs = {frozenset(p) for p in fig3_poset.incomparable_pairs()}
        assert frozenset({3, 4}) in pairs
        assert frozenset({1, 9}) not in pairs
        # Count: total pairs minus comparable ones.
        n = len(fig3_poset)
        comparable = sum(
            1
            for i, x in enumerate(fig3_poset.vertices())
            for y in fig3_poset.vertices()[i + 1 :]
            if fig3_poset.comparable(x, y)
        )
        assert len(pairs) == n * (n - 1) // 2 - comparable
