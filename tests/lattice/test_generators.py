"""Tests for the lattice/graph generator families."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.lattice.generators import (
    boolean_lattice,
    chain,
    diamond,
    figure2_lattice,
    figure3_lattice,
    grid_diagram,
    grid_digraph,
    random_staircase,
    random_two_dim_poset,
    staircase_digraph,
    standard_example,
)
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional


class TestDeterministicFamilies:
    def test_chain(self):
        g = chain(4)
        assert list(g.arcs()) == [(0, 1), (1, 2), (2, 3)]
        with pytest.raises(WorkloadError):
            chain(0)

    def test_diamond_is_smallest_nontrivial_lattice(self):
        p = Poset(diamond())
        assert p.is_lattice() and len(p) == 4

    def test_grid_counts(self):
        g = grid_digraph(3, 4)
        assert g.vertex_count == 12
        assert g.arc_count == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        with pytest.raises(WorkloadError):
            grid_digraph(0, 3)

    def test_grid_diagram_coordinates_realize_order(self):
        d = grid_diagram(3, 3)
        p = Poset(d.graph)
        for x in p.vertices():
            for y in p.vertices():
                ax, bx = d.coords[x]
                ay, by = d.coords[y]
                assert p.leq(x, y) == (ax <= ay and bx <= by)

    def test_figure_lattices(self):
        assert Poset(figure3_lattice()).is_lattice()
        assert Poset(figure2_lattice()).is_lattice()


class TestStaircases:
    def test_explicit_staircase(self):
        g = staircase_digraph([0, 0, 1], [1, 2, 2])
        p = Poset(g)
        assert p.is_lattice()
        assert p.bottom() == (0, 0) and p.top() == (2, 2)

    def test_bad_bounds_rejected(self):
        with pytest.raises(WorkloadError):
            staircase_digraph([1], [0])  # lo > hi
        with pytest.raises(WorkloadError):
            staircase_digraph([0, 0], [1, 0])  # hi decreasing
        with pytest.raises(WorkloadError):
            staircase_digraph([0, 3], [1, 4])  # rows do not overlap
        with pytest.raises(WorkloadError):
            staircase_digraph([], [])

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rows=st.integers(1, 6),
        width=st.integers(1, 5),
    )
    def test_random_staircases_are_2d_lattices(self, seed, rows, width):
        g = random_staircase(rows, width, random.Random(seed))
        p = Poset(g)
        assert p.is_lattice()
        assert is_two_dimensional(p)
        assert p.bottom() is not None and p.top() is not None


class TestRandom2DPosets:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 10))
    def test_dimension_at_most_2(self, seed, n):
        g = random_two_dim_poset(n, random.Random(seed))
        assert is_two_dimensional(Poset(g))


class TestWitnesses:
    def test_boolean_lattice_sizes(self):
        assert Poset(boolean_lattice(0)).vertices() == [frozenset()]
        assert len(Poset(boolean_lattice(3))) == 8

    def test_standard_example_structure(self):
        g = standard_example(3)
        p = Poset(g)
        assert not p.leq(("a", 0), ("b", 0))
        assert p.leq(("a", 0), ("b", 1))
        with pytest.raises(WorkloadError):
            standard_example(1)
