"""Tests for the Dedekind-MacNeille completion."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.completion import macneille_completion, random_2d_lattice
from repro.lattice.digraph import Digraph
from repro.lattice.generators import (
    boolean_lattice,
    diamond,
    random_two_dim_poset,
    standard_example,
)
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional


class TestCompletion:
    def test_lattice_is_its_own_completion(self):
        poset = Poset(diamond())
        completion, emb = macneille_completion(poset)
        assert len(completion) == len(poset)
        assert completion.is_lattice()

    def test_antichain_gains_bounds(self):
        g = Digraph()
        for i in range(3):
            g.add_vertex(i)
        completion, emb = macneille_completion(Poset(g))
        # three elements + bottom + top
        assert len(completion) == 5
        assert completion.is_lattice()

    def test_standard_example_s2(self):
        """S_2 (the 4-element 'X' poset) completes by adding a mid
        element?  No: its completion adds bottom and top only when
        bounds are missing -- just check lattice-ness and embedding."""
        poset = Poset(standard_example(2))
        completion, emb = macneille_completion(poset)
        assert completion.is_lattice()
        for x in poset.vertices():
            for y in poset.vertices():
                assert poset.leq(x, y) == completion.leq(emb[x], emb[y])

    def test_embedding_preserves_order_exactly(self):
        rng = random.Random(3)
        base = Poset(random_two_dim_poset(7, rng))
        completion, emb = macneille_completion(base)
        for x in base.vertices():
            for y in base.vertices():
                assert base.leq(x, y) == completion.leq(emb[x], emb[y])

    def test_completion_is_bounded_lattice(self):
        rng = random.Random(9)
        base = Poset(random_two_dim_poset(6, rng))
        completion, _ = macneille_completion(base)
        assert completion.is_lattice()
        assert completion.bottom() is not None
        assert completion.top() is not None

    def test_existing_suprema_preserved(self):
        poset = Poset(diamond())
        completion, emb = macneille_completion(poset)
        assert completion.sup(emb[1], emb[2]) == emb[3]
        assert completion.inf(emb[1], emb[2]) == emb[0]

    def test_b3_completion_is_b3(self):
        poset = Poset(boolean_lattice(3))
        completion, _ = macneille_completion(poset)
        assert len(completion) == 8  # already complete

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 8))
    def test_completion_of_2d_poset_is_2d_lattice(self, seed, n):
        """The key fact for the generator: completion preserves order
        dimension, so 2D posets complete to 2D lattices."""
        rng = random.Random(seed)
        base = Poset(random_two_dim_poset(n, rng))
        completion, _ = macneille_completion(base)
        assert completion.is_lattice()
        assert is_two_dimensional(completion)


class TestRandomLatticeGenerator:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 8))
    def test_random_2d_lattice(self, seed, n):
        g = random_2d_lattice(n, random.Random(seed))
        poset = Poset(g)
        assert poset.is_lattice()
        assert is_two_dimensional(poset)
        assert poset.bottom() is not None and poset.top() is not None

    def test_feeds_the_core_algorithms(self):
        """Completion-generated lattices work end to end: traversal,
        suprema, synthesis."""
        from repro.forkjoin.replay import replay_events
        from repro.forkjoin.synthesis import synthesize_events
        from repro.lattice.dominance import Diagram

        g = random_2d_lattice(7, random.Random(123))
        poset = Poset(g)
        diagram = Diagram.from_poset(poset)
        diagram.check_planar()
        synth = synthesize_events(diagram)
        replay_events(synth.events)
