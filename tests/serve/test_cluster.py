"""Unit tests for the multi-node gateway (:mod:`repro.serve.cluster`).

Negotiation first (the v5 worker-count field, the typed refusals),
then routing exactness (gateway-sharded detection equals a serial
local replay, for raw, depa, and compressed sessions), then migration
under kill (SIGKILL a worker mid-stream; the respawn/RESUME/replay
machinery must deliver the identical race multiset, while a
non-checkpointable depa session must fail typed instead).
"""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve import (
    ClusterConfig,
    ClusterThread,
    RaceClient,
    RemoteError,
)
from repro.serve import protocol as wire

from .conftest import RawConn, local_race_multiset, race_multiset

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def cluster2():
    """One 2-worker gateway for the whole module (sessions are
    isolated; the kill tests build their own clusters)."""
    with ClusterThread(
        ClusterConfig(workers=2, checkpoint_interval=2),
        registry=MetricsRegistry(),
    ) as cluster:
        yield cluster


class TestNegotiation:
    def test_v5_reply_carries_worker_count(self, cluster2):
        with RawConn(cluster2.port) as conn:
            assert conn.workers == 2
            conn.send_frame(wire.FRAME_BYE)

    def test_v4_client_gets_v4_shape(self, cluster2):
        # The reply mirrors the client's version: no worker count on
        # the wire, the default of one is all a v4 client can know.
        with RawConn(cluster2.port, version=4) as conn:
            assert conn.workers == 1
            conn.send_frame(wire.FRAME_BYE)

    def test_v2_exchange_still_works(self, cluster2):
        with RawConn(cluster2.port, version=2) as conn:
            assert conn.workers == 1
            assert conn.backend is None
            conn.send_frame(wire.FRAME_BYE)

    def test_client_resume_refused_typed(self, cluster2):
        with RawConn(cluster2.port) as conn:
            conn.send_frame(
                wire.FRAME_RESUME, wire.encode_resume("through-gateway")
            )
            message = conn.expect_error(wire.ERR_CHECKPOINT)
            assert "gateway" in message

    def test_unknown_backend_refused(self, cluster2):
        with RawConn(cluster2.port, hello=False) as conn:
            conn.send_frame(
                wire.FRAME_HELLO, wire.encode_hello(backend="warp9")
            )
            conn.expect_error(wire.ERR_BACKEND)

    def test_client_exposes_worker_count(self, cluster2):
        client = RaceClient("127.0.0.1", cluster2.port).connect()
        try:
            assert client.negotiated_workers == 2
        finally:
            client.close()


class TestRouting:
    def test_matches_local_replay(self, cluster2, small_workload):
        batch, _interner = small_workload
        local = local_race_multiset(batch)
        with RaceClient("127.0.0.1", cluster2.port) as client:
            client.send_batches(batch, batch_size=1024)
            summary = client.finish()
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local

    def test_depa_sessions_agree(self, cluster2, small_workload):
        batch, _interner = small_workload
        local = local_race_multiset(batch)
        with RaceClient(
            "127.0.0.1", cluster2.port, backend="depa"
        ) as client:
            client.send_batches(batch, batch_size=1024)
            summary = client.finish()
        assert client.negotiated_backend == "depa"
        assert race_multiset(summary.reports) == local

    def test_compressed_sessions_agree(self, cluster2, small_workload):
        batch, _interner = small_workload
        local = local_race_multiset(batch)
        with RaceClient(
            "127.0.0.1", cluster2.port, compress=True
        ) as client:
            client.send_batches_compressed(batch, batch_size=2048)
            summary = client.finish()
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local

    def test_routing_counters_partition_events(self, small_workload):
        batch, _interner = small_workload
        registry = MetricsRegistry()
        with ClusterThread(
            ClusterConfig(workers=2), registry=registry
        ) as cluster:
            with RaceClient("127.0.0.1", cluster.port) as client:
                client.send_batches(batch, batch_size=1024)
                client.finish()
            metrics = cluster.cluster._m
            routed = sum(c.value for c in metrics.routed)
            lifecycle = metrics.lifecycle.value
            assert metrics.events.value == len(batch)
            # every event counts exactly once: an access against its
            # owner worker, a replicated lifecycle event once
            assert routed + lifecycle == len(batch)
            assert all(c.value > 0 for c in metrics.routed)


class TestMigration:
    def test_kill_worker_mid_stream_is_exact(self, small_workload):
        batch, _interner = small_workload
        local = local_race_multiset(batch)
        registry = MetricsRegistry()
        with ClusterThread(
            ClusterConfig(workers=2, checkpoint_interval=2),
            registry=registry,
        ) as cluster:
            pieces = list(batch.slices(256))
            client = RaceClient(
                "127.0.0.1", cluster.port, timeout=30.0
            ).connect()
            try:
                for k, piece in enumerate(pieces):
                    if k == len(pieces) // 2:
                        cluster.kill_worker(1)
                    client.send_batch(piece)
                summary = client.finish()
            finally:
                client.close()
            respawns = sum(
                c.value for c in cluster.cluster._m.respawns
            )
        assert race_multiset(summary.reports) == local
        assert summary.events == len(batch)
        assert respawns >= 1

    def test_kill_under_depa_session_fails_typed(self, small_workload):
        # depa links are not durable: a worker kill must surface as a
        # typed ERR_DETECTOR, never hang and never silently downgrade.
        batch, _interner = small_workload
        with ClusterThread(
            ClusterConfig(workers=2, link_retries=1, link_backoff=0.05),
            registry=MetricsRegistry(),
        ) as cluster:
            pieces = list(batch.slices(256))
            client = RaceClient(
                "127.0.0.1", cluster.port, backend="depa", timeout=30.0
            ).connect()
            try:
                with pytest.raises(RemoteError) as excinfo:
                    for k, piece in enumerate(pieces):
                        if k == len(pieces) // 2:
                            cluster.kill_worker(0)
                        client.send_batch(piece)
                    client.finish()
                assert excinfo.value.code == wire.ERR_DETECTOR
            finally:
                client.close()
