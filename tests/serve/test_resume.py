"""Durable sessions: kill -9, resume, replay, and torn checkpoints.

The acceptance test for the fault-tolerance layer lives here: a serve
*subprocess* is SIGKILLed mid-stream (no drain, no final checkpoint,
no atexit), restarted on the same checkpoint directory, and the durable
client's automatic resume must end with **exactly** the race multiset
of an uninterrupted local replay.  Around it: duplicate-frame dedup,
sequence-gap refusal, ACK-driven replay-buffer trimming, fresh-client
resume, and the typed refusal of a corrupted checkpoint.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.engine.faults import ServerProcess, corrupt_flip, free_port
from repro.errors import ServeError
from repro.obs.registry import MetricsRegistry
from repro.serve import RaceClient, RemoteError, ServeConfig, ServerThread
from repro.serve import protocol as wire

from .conftest import RawConn, local_race_multiset, race_multiset

pytestmark = pytest.mark.serve


def make_server(tmp_path, registry=None, **kw) -> ServerThread:
    kw.setdefault("drain_timeout", 2.0)
    kw.setdefault("checkpoint_dir", str(tmp_path / "ckpts"))
    kw.setdefault("checkpoint_interval", 2)
    return ServerThread(
        ServeConfig(**kw),
        registry=registry if registry is not None else MetricsRegistry(),
    )


def counter_value(registry, name, **labels) -> float:
    for inst in registry.instruments():
        if inst.name == name and all(
            inst.labels.get(k) == v for k, v in labels.items()
        ):
            return inst.value
    return 0.0


class TestKillNineAcceptance:
    def test_sigkill_restart_resume_matches_local_replay(
        self, small_workload, tmp_path
    ):
        batch, _interner = small_workload
        expected = local_race_multiset(batch)
        pieces = list(batch.slices(512))
        kill_at = len(pieces) // 2
        ckdir = str(tmp_path / "ckpts")
        port = free_port()

        server = ServerProcess(port, ckdir, checkpoint_interval=2).start()
        try:
            with RaceClient(
                "127.0.0.1", port, session="accept-1",
                timeout=15.0, max_retries=8, retry_backoff=0.2,
            ) as client:
                for k, piece in enumerate(pieces):
                    if k == kill_at:
                        server.kill()
                        assert not server.alive()
                        server = ServerProcess(
                            port, ckdir, checkpoint_interval=2
                        ).start()
                    client.send_batch(piece)
                summary = client.finish()
                assert client.reconnects >= 1
        finally:
            server.terminate()
        assert race_multiset(summary.reports) == expected


class TestResumeInProcess:
    def _stream(self, client, batch, chunk=512):
        for piece in batch.slices(chunk):
            client.send_batch(piece)

    def test_durable_session_equals_local_replay(
        self, small_workload, tmp_path
    ):
        batch, _interner = small_workload
        with make_server(tmp_path) as srv:
            with RaceClient(
                "127.0.0.1", srv.port, session="plain-durable"
            ) as client:
                self._stream(client, batch)
                summary = client.finish()
        assert race_multiset(summary.reports) == local_race_multiset(batch)

    def test_fresh_client_resume_sees_checkpointed_races(
        self, small_workload, tmp_path
    ):
        """A brand-new client resuming the token gets the snapshot
        RACES frame for everything detected before the checkpoint."""
        batch, _interner = small_workload
        pieces = list(batch.slices(512))
        cut = len(pieces) // 2
        registry = MetricsRegistry()
        with make_server(tmp_path, registry=registry) as srv:
            c1 = RaceClient(
                "127.0.0.1", srv.port, session="fresh-resume"
            ).connect()
            for piece in pieces[:cut]:
                c1.send_batch(piece)
            # The background checkpoint races the handover; wait for it.
            ckpt = tmp_path / "ckpts" / "fresh-resume.ckpt"
            deadline = time.monotonic() + 10.0
            while not ckpt.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert ckpt.exists()
            # Vanish without BYE: the crash-shaped disconnect.
            c1._sock.close()
            c1._sock = None

            with RaceClient(
                "127.0.0.1", srv.port, session="fresh-resume"
            ) as c2:
                assert c2.durable_seq > 0  # the checkpoint was found
                # seq i covered pieces[i-1]; the client continues the
                # sequence, so only the tail past the checkpoint ships.
                for piece in pieces[c2.durable_seq:]:
                    c2.send_batch(piece)
                summary = c2.finish()
        assert race_multiset(summary.reports) == local_race_multiset(batch)
        assert counter_value(registry, "serve_restores_total") >= 1.0

    def test_duplicate_batches_are_skipped_idempotently(
        self, small_workload, tmp_path
    ):
        batch, _interner = small_workload
        rng = random.Random(3)
        registry = MetricsRegistry()
        with make_server(tmp_path, registry=registry) as srv:
            with RaceClient(
                "127.0.0.1", srv.port, session="dup-absorb"
            ) as client:
                duplicated = 0
                for piece in batch.slices(512):
                    client.send_batch(piece)
                    if client._unacked and rng.random() < 0.5:
                        seq = rng.choice(sorted(client._unacked))
                        client._send_payload(*client._unacked[seq])
                        duplicated += 1
                assert duplicated > 0
                summary = client.finish()
        assert race_multiset(summary.reports) == local_race_multiset(batch)
        assert counter_value(
            registry, "serve_duplicate_batches_total"
        ) == duplicated

    def test_acks_trim_the_replay_buffer(self, small_workload, tmp_path):
        batch, _interner = small_workload
        with make_server(tmp_path, checkpoint_interval=1) as srv:
            with RaceClient(
                "127.0.0.1", srv.port, session="ack-trim"
            ) as client:
                total = 0
                for piece in batch.slices(512):
                    client.send_batch(piece)
                    total += 1
                client.finish()
                assert client.durable_seq > 0
                assert len(client._unacked) < total
                assert all(
                    seq > client.durable_seq for seq in client._unacked
                )

    def test_corrupt_checkpoint_refused_with_typed_error(
        self, small_workload, tmp_path
    ):
        batch, _interner = small_workload
        ckdir = tmp_path / "ckpts"
        with make_server(tmp_path) as srv:
            with RaceClient(
                "127.0.0.1", srv.port, session="doomed"
            ) as client:
                self._stream(client, batch)
                client.finish()
        ckpt = ckdir / "doomed.ckpt"
        assert ckpt.exists()  # graceful teardown checkpointed the tail
        corrupt_flip(str(ckpt), random.Random(5))
        with make_server(tmp_path) as srv:
            client = RaceClient("127.0.0.1", srv.port, session="doomed")
            with pytest.raises(RemoteError) as excinfo:
                client.connect()
            assert excinfo.value.code == wire.ERR_CHECKPOINT


class TestHostileSequencing:
    def test_sequence_gap_rejected(self, small_workload, tmp_path):
        batch, _interner = small_workload
        with make_server(tmp_path) as srv:
            with RawConn(srv.port) as conn:
                conn.send_frame(
                    wire.FRAME_RESUME, wire.encode_resume("gappy")
                )
                ftype, payload = conn.recv_frame()
                assert ftype == wire.FRAME_RESUME
                assert wire.decode_resume_reply(payload) == 0
                conn.send_frame(
                    wire.FRAME_BATCH,
                    wire.encode_batch_payload(batch, seq=5),
                )
                message = conn.expect_error(wire.ERR_PROTOCOL)
                assert "contiguity" in message

    def test_unsequenced_batch_rejected_on_durable_session(
        self, small_workload, tmp_path
    ):
        batch, _interner = small_workload
        with make_server(tmp_path) as srv:
            with RawConn(srv.port) as conn:
                conn.send_frame(
                    wire.FRAME_RESUME, wire.encode_resume("no-legacy")
                )
                conn.recv_frame()
                conn.send_frame(
                    wire.FRAME_BATCH,
                    wire.encode_batch_payload(batch, seq=0),
                )
                message = conn.expect_error(wire.ERR_PROTOCOL)
                assert "sequence" in message

    def test_resume_without_checkpoint_dir_rejected(self):
        with ServerThread(
            ServeConfig(drain_timeout=2.0), registry=MetricsRegistry()
        ) as srv:
            with RawConn(srv.port) as conn:
                conn.send_frame(
                    wire.FRAME_RESUME, wire.encode_resume("nowhere")
                )
                conn.expect_error(wire.ERR_CHECKPOINT)

    def test_resume_after_batches_rejected(self, small_workload, tmp_path):
        batch, _interner = small_workload
        with make_server(tmp_path) as srv:
            with RawConn(srv.port) as conn:
                conn.send_frame(
                    wire.FRAME_BATCH, wire.encode_batch_payload(batch)
                )
                conn.send_frame(
                    wire.FRAME_RESUME, wire.encode_resume("late")
                )
                conn.expect_error(wire.ERR_PROTOCOL)


class TestDurableConfig:
    def test_checkpoint_dir_with_jobs_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="jobs"):
            ServerThread(
                ServeConfig(checkpoint_dir=str(tmp_path), jobs=2)
            ).start()

    def test_bad_checkpoint_interval_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="interval"):
            ServerThread(
                ServeConfig(
                    checkpoint_dir=str(tmp_path), checkpoint_interval=0
                )
            ).start()

    def test_transport_failures_do_not_mask_remote_errors(self, tmp_path):
        # A bad token is rejected client-side before anything is sent.
        with pytest.raises(ServeError, match="session token"):
            RaceClient("127.0.0.1", 1, session="../traversal")
