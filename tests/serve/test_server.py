"""Integration tests for the asyncio ingest server.

Every test runs a real :class:`ServerThread` on loopback with its own
:class:`MetricsRegistry`, drives it with either the well-behaved
:class:`RaceClient` or the hostile :class:`RawConn`, and checks both
the wire behaviour and the observability counters.
"""

from __future__ import annotations

import struct
import time
from array import array
from collections import Counter

import pytest

from repro.engine.batch import OP_JOIN, OP_WRITE, EventBatch
from repro.engine.ingest import BatchEngine
from repro.errors import ProtocolError, ServeError
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    RaceClient,
    RemoteError,
    ServeConfig,
    ServerThread,
    run_load,
    submit_batch,
)
from repro.serve import protocol as wire
from repro.serve.server import _SessionEngine, start_metrics_http

from .conftest import RawConn, local_race_multiset, race_multiset

pytestmark = pytest.mark.serve


def make_server(registry=None, **kw) -> ServerThread:
    kw.setdefault("drain_timeout", 2.0)
    return ServerThread(
        ServeConfig(**kw),
        registry=registry if registry is not None else MetricsRegistry(),
    )


def counter_value(registry, name, **labels) -> float:
    for inst in registry.instruments():
        if inst.name == name and all(
            dict(inst.labels).get(k) == v for k, v in labels.items()
        ):
            return inst.value
    return 0.0


class TestRoundTrip:
    def test_100k_event_racegen_matches_local_replay(self, big_workload):
        """The acceptance bar: a 100k-access racegen trace served over
        loopback reports the exact race multiset of a local replay."""
        batch, _interner = big_workload
        assert len(batch) >= 100_000
        local = local_race_multiset(batch)
        with make_server() as srv:
            with RaceClient("127.0.0.1", srv.port) as client:
                client.send_batches(batch, 8192)
                summary = client.finish()
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local
        assert summary.races == sum(local.values()) > 0

    def test_sessions_are_isolated(self, small_workload):
        """Two sessions replaying the same program each get the full
        race set -- state never bleeds across engines."""
        batch, _ = small_workload
        local = local_race_multiset(batch)
        with make_server() as srv:
            first = submit_batch("127.0.0.1", srv.port, batch)
            second = submit_batch("127.0.0.1", srv.port, batch)
        assert race_multiset(first.reports) == local
        assert race_multiset(second.reports) == local

    def test_concurrent_sessions(self, small_workload):
        batch, _ = small_workload
        local = local_race_multiset(batch)
        with make_server() as srv:
            result = run_load(
                "127.0.0.1", srv.port, batch, sessions=4, batch_size=1024
            )
        assert result.sessions == 4
        assert result.events == 4 * len(batch)
        for summary in result.summaries:
            assert race_multiset(summary.reports) == local

    def test_shipped_location_table(self, small_workload):
        """With ``ship_locations`` the server knows the table size and
        the round-trip still matches."""
        batch, interner = small_workload
        local = local_race_multiset(batch)
        with make_server() as srv:
            summary = submit_batch(
                "127.0.0.1", srv.port, batch, interner=interner,
                batch_size=512, ship_locations=True,
            )
        assert race_multiset(summary.reports) == local

    def test_empty_session(self):
        with make_server() as srv:
            with RaceClient("127.0.0.1", srv.port) as client:
                summary = client.finish()
        assert (summary.events, summary.races) == (0, 0)

    def test_metrics_account_for_the_session(self, small_workload):
        batch, _ = small_workload
        registry = MetricsRegistry()
        with make_server(registry) as srv:
            submit_batch("127.0.0.1", srv.port, batch, batch_size=1024)
            assert counter_value(registry, "serve_sessions_total") == 1
            assert counter_value(registry, "serve_events_total") == len(batch)
            assert counter_value(
                registry, "serve_frames_total", dir="in", type="BATCH"
            ) == len(list(batch.slices(1024)))
            assert counter_value(
                registry, "serve_frames_total", dir="out", type="BYE"
            ) == 1
            assert counter_value(registry, "serve_bytes_total", dir="in") > 0
            # teardown runs just after the BYE reply: poll briefly
            deadline = time.time() + 5
            while time.time() < deadline:
                if counter_value(registry, "serve_sessions_active") == 0:
                    break
                time.sleep(0.02)
            assert counter_value(registry, "serve_sessions_active") == 0


class TestProtocolViolations:
    def test_version_mismatch_gets_version_error(self):
        with make_server() as srv, RawConn(srv.port, hello=False) as conn:
            bad = struct.pack("<8sII", wire.PROTOCOL_MAGIC, 99, 1 << 20)
            conn.send_frame(wire.FRAME_HELLO, bad)
            message = conn.expect_error(wire.ERR_VERSION)
            assert "99" in message
            conn.expect_eof()

    def test_non_hello_first_frame_rejected(self):
        with make_server() as srv, RawConn(srv.port, hello=False) as conn:
            conn.send_frame(wire.FRAME_CREDIT, wire.encode_credit(1))
            conn.expect_error(wire.ERR_PROTOCOL)

    def test_bad_crc_rejected(self):
        with make_server() as srv, RawConn(srv.port) as conn:
            frame = bytearray(
                wire.encode_frame(wire.FRAME_BYE, b"")
            )
            frame[5] ^= 0xFF  # stomp the CRC field
            conn.send(bytes(frame))
            conn.expect_error(wire.ERR_BAD_CRC)

    def test_oversized_frame_rejected(self):
        with make_server(max_frame=1024) as srv, RawConn(srv.port) as conn:
            assert conn.max_frame == 1024
            conn.send_frame(wire.FRAME_BATCH, b"x" * 2048)
            conn.expect_error(wire.ERR_FRAME_TOO_LARGE)

    def test_lying_batch_header_rejected_as_malformed(self, small_workload):
        batch, _ = small_workload
        with make_server() as srv, RawConn(srv.port) as conn:
            payload = bytearray(wire.encode_batch_payload(batch))
            struct.pack_into("<Q", payload, 8, len(batch) + 7)
            conn.send_frame(wire.FRAME_BATCH, bytes(payload))
            conn.expect_error(wire.ERR_MALFORMED_BATCH)

    def test_unknown_opcode_rejected_as_malformed(self):
        bad = EventBatch(
            array("B", [77]), array("i", [0]), array("i", [-1])
        )
        with make_server() as srv, RawConn(srv.port) as conn:
            conn.send_frame(
                wire.FRAME_BATCH, wire.encode_batch_payload(bad)
            )
            conn.expect_error(wire.ERR_MALFORMED_BATCH)

    def test_access_beyond_shipped_table_rejected(self):
        batch = EventBatch(
            array("B", [OP_WRITE]), array("i", [0]), array("i", [5])
        )
        with make_server() as srv, RawConn(srv.port) as conn:
            conn.send_frame(
                wire.FRAME_BATCH,
                wire.encode_batch_payload(batch, new_locations=["x"]),
            )
            conn.expect_error(wire.ERR_MALFORMED_BATCH)

    def test_structural_violation_gets_detector_error(self):
        # joining a thread id that was never forked
        bad = EventBatch(
            array("B", [OP_JOIN]), array("i", [0]), array("i", [5])
        )
        with make_server() as srv, RawConn(srv.port) as conn:
            conn.send_frame(
                wire.FRAME_BATCH, wire.encode_batch_payload(bad)
            )
            conn.expect_error(wire.ERR_DETECTOR)

    def test_credit_overrun_rejected(self, small_workload):
        batch, _ = small_workload
        piece = next(batch.slices(64))
        payload = wire.encode_batch_payload(piece)
        # high_water=0 means grants are withheld forever, so pushing
        # past the initial window must trip the overrun error.
        with make_server(
            credit_window=2, queue_high_water=0
        ) as srv, RawConn(srv.port) as conn:
            assert conn.credit == 2
            for _ in range(3):
                conn.send_frame(wire.FRAME_BATCH, payload)
            conn.expect_error(wire.ERR_CREDIT_OVERRUN)


class TestSessionLifecycle:
    def test_idle_timeout_disconnects(self):
        registry = MetricsRegistry()
        with make_server(registry, idle_timeout=0.3) as srv:
            with RawConn(srv.port) as conn:
                conn.expect_error(wire.ERR_IDLE_TIMEOUT)
                conn.expect_eof()
            deadline = time.time() + 5
            while time.time() < deadline:
                if counter_value(registry, "serve_sessions_active") == 0:
                    break
                time.sleep(0.02)
            assert counter_value(registry, "serve_sessions_active") == 0
            assert (
                counter_value(registry, "serve_errors_total",
                              code="idle-timeout") == 1
            )

    def test_hello_timeout_disconnects(self):
        with make_server(hello_timeout=0.3) as srv:
            with RawConn(srv.port, hello=False) as conn:
                conn.expect_error(wire.ERR_IDLE_TIMEOUT)

    def test_mid_batch_client_kill_leaks_nothing(self, small_workload):
        """A client that dies mid-frame tears its session (and engine)
        down; the server keeps serving."""
        batch, _ = small_workload
        registry = MetricsRegistry()
        with make_server(registry) as srv:
            conn = RawConn(srv.port)
            payload = wire.encode_batch_payload(batch)
            # half a frame, then vanish
            conn.send(wire.encode_frame(wire.FRAME_BATCH, payload)[: 40])
            conn.close()
            deadline = time.time() + 5
            while time.time() < deadline:
                if (
                    counter_value(registry, "serve_sessions_active") == 0
                    and not srv.server._sessions
                ):
                    break
                time.sleep(0.02)
            assert counter_value(registry, "serve_sessions_active") == 0
            assert not srv.server._sessions  # engine went down with it
            # the server is still healthy
            summary = submit_batch("127.0.0.1", srv.port, batch)
            assert summary.events == len(batch)

    def test_session_engine_close_drops_state(self):
        engine = _SessionEngine(MetricsRegistry())
        assert not engine.closed
        engine.close()
        assert engine.closed
        with pytest.raises(ServeError, match="closed"):
            engine.ingest(EventBatch())
        with pytest.raises(ServeError, match="closed"):
            _ = engine.events_ingested

    def test_graceful_stop_with_live_session(self, small_workload):
        batch, _ = small_workload
        srv = make_server(drain_timeout=0.5)
        srv.start()
        client = RaceClient("127.0.0.1", srv.port).connect()
        client.send_batch(next(batch.slices(256)))
        srv.stop()  # drains; the idle session is cancelled after 0.5s
        client.close()
        assert not srv._thread.is_alive()


class TestBackpressure:
    def test_16_sessions_bounded_queue(self, big_workload):
        """The acceptance bar: 16 sessions under a tiny credit window
        cannot grow the server queue past ``sessions x window``, and
        the high-water mark forces real credit stalls."""
        batch, _ = big_workload
        sessions, window = 16, 2
        registry = MetricsRegistry()
        with make_server(
            registry, credit_window=window, queue_high_water=1
        ) as srv:
            result = run_load(
                "127.0.0.1", srv.port, batch,
                sessions=sessions, batch_size=16384,
            )
        assert result.events == sessions * len(batch)
        depth_max = counter_value(registry, "serve_queue_depth_max")
        assert 0 < depth_max <= sessions * window
        assert counter_value(registry, "serve_credit_stalls_total") > 0
        # every withheld grant was eventually returned: the stream ran
        # to completion, which send_batch's credit wait already proves

    def test_queue_depth_returns_to_zero(self, small_workload):
        batch, _ = small_workload
        registry = MetricsRegistry()
        with make_server(registry, credit_window=2, queue_high_water=1) as srv:
            submit_batch("127.0.0.1", srv.port, batch, batch_size=256)
            assert counter_value(registry, "serve_queue_depth") == 0


class TestSharedParallelMode:
    def test_jobs_mode_matches_local_replay(self, small_workload):
        batch, _ = small_workload
        local = local_race_multiset(batch)
        with make_server(jobs=2) as srv:
            summary = submit_batch(
                "127.0.0.1", srv.port, batch, batch_size=1024
            )
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local

    def test_jobs_mode_is_single_tenant(self, small_workload):
        """The shared engine is one logical stream: a second session
        replaying the same program collides with the first session's
        thread ids and is rejected as a detector error."""
        batch, _ = small_workload
        with make_server(jobs=2) as srv:
            submit_batch("127.0.0.1", srv.port, batch, batch_size=1024)
            with pytest.raises(RemoteError) as exc_info:
                submit_batch("127.0.0.1", srv.port, batch, batch_size=1024)
            assert exc_info.value.code == wire.ERR_DETECTOR


class TestBackendNegotiation:
    def test_depa_session_matches_local_replay(self, small_workload):
        """A v3 HELLO requesting depa gets a depa engine and streams
        the exact race multiset of a local lattice2d replay."""
        batch, _ = small_workload
        local = local_race_multiset(batch)
        registry = MetricsRegistry()
        with make_server(registry) as srv:
            with RaceClient(
                "127.0.0.1", srv.port, backend="depa"
            ) as client:
                client.send_batches(batch, 1024)
                summary = client.finish()
            assert client.negotiated_backend == "depa"
        assert race_multiset(summary.reports) == local
        assert counter_value(
            registry, "serve_sessions_backend_total", backend="depa"
        ) == 1

    def test_v2_client_runs_unchanged(self, small_workload):
        """A pre-negotiation client -- v2 HELLO, v2 reply decode -- must
        complete a full session byte-identically to before."""
        batch, _ = small_workload
        local = local_race_multiset(batch)
        with make_server() as srv:
            with RawConn(srv.port, version=2) as conn:
                assert conn.backend is None  # v2-shaped reply
                conn.send_frame(
                    wire.FRAME_BATCH, wire.encode_batch_payload(batch)
                )
                conn.send_frame(wire.FRAME_BYE)
                reports = []
                while True:
                    ftype, payload = conn.recv_frame()
                    if ftype == wire.FRAME_RACES:
                        _seq, rows = wire.decode_races(payload)
                        reports.extend(rows)
                    elif ftype == wire.FRAME_BYE:
                        events, _races = wire.decode_bye_summary(payload)
                        break
                    else:
                        assert ftype == wire.FRAME_CREDIT
        assert events == len(batch)
        assert race_multiset(reports) == local

    def test_unknown_backend_refused_with_typed_error(self):
        with make_server() as srv:
            with pytest.raises(RemoteError) as exc_info:
                RaceClient(
                    "127.0.0.1", srv.port, backend="quantum"
                ).connect()
            assert exc_info.value.code == wire.ERR_BACKEND

    def test_shared_pool_refuses_mismatched_backend(self, small_workload):
        """jobs > 1 serves one pool of one backend; a session asking
        for a different one is refused, a matching ask is granted."""
        batch, _ = small_workload
        with make_server(jobs=2) as srv:
            with pytest.raises(RemoteError) as exc_info:
                RaceClient(
                    "127.0.0.1", srv.port, backend="depa"
                ).connect()
            assert exc_info.value.code == wire.ERR_BACKEND
            with RaceClient(
                "127.0.0.1", srv.port, backend="lattice2d"
            ) as client:
                client.send_batches(batch, 1024)
                client.finish()
            assert client.negotiated_backend == "lattice2d"

    def test_depa_shared_pool_round_trips(self, small_workload):
        batch, _ = small_workload
        local = local_race_multiset(batch)
        with make_server(jobs=2, backend="depa") as srv:
            with RaceClient(
                "127.0.0.1", srv.port, backend="depa"
            ) as client:
                client.send_batches(batch, 1024)
                summary = client.finish()
        assert race_multiset(summary.reports) == local

    def test_predict_server_refuses_depa_request(self):
        with make_server(predict=True) as srv:
            with pytest.raises(RemoteError) as exc_info:
                RaceClient(
                    "127.0.0.1", srv.port, backend="depa"
                ).connect()
            assert exc_info.value.code == wire.ERR_BACKEND

    def test_depa_session_refuses_resume(self, tmp_path):
        """Durable sessions need checkpointable engines: a depa session
        sending RESUME gets a typed checkpoint refusal, never a silent
        engine swap."""
        with make_server(checkpoint_dir=str(tmp_path)) as srv:
            with pytest.raises(RemoteError) as exc_info:
                RaceClient(
                    "127.0.0.1", srv.port, backend="depa",
                    session="tok-1",
                ).connect()
            assert exc_info.value.code == wire.ERR_CHECKPOINT

    def test_requested_backend_is_required_not_preferred(self):
        """Against a pre-negotiation (v2-replying) server, a client
        that requested a backend refuses the session instead of
        silently running lattice2d."""
        import socket
        import threading

        srv_sock = socket.socket()
        srv_sock.bind(("127.0.0.1", 0))
        srv_sock.listen(1)
        port = srv_sock.getsockname()[1]

        def serve_one():
            conn, _ = srv_sock.accept()
            got = b""
            while len(got) < wire.FRAME_HEADER_SIZE:
                got += conn.recv(64)
            length, _ftype, _crc = wire.parse_frame_header(got)
            while len(got) < wire.FRAME_HEADER_SIZE + length:
                got += conn.recv(64)
            conn.sendall(
                wire.encode_frame(
                    wire.FRAME_HELLO,
                    wire.encode_hello_reply(
                        8, wire.DEFAULT_MAX_FRAME, version=2
                    ),
                )
            )
            conn.recv(1)
            conn.close()

        thread = threading.Thread(target=serve_one, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServeError, match="granted"):
                RaceClient(
                    "127.0.0.1", port, backend="depa", timeout=10.0
                ).connect()
        finally:
            srv_sock.close()
            thread.join(5.0)

    def test_config_backend_validation(self, tmp_path):
        with pytest.raises(ServeError, match="unknown serve backend"):
            ServerThread(ServeConfig(backend="nope")).start()
        with pytest.raises(ServeError, match="prediction"):
            ServerThread(
                ServeConfig(backend="depa", predict=True)
            ).start()
        with pytest.raises(ServeError, match="checkpoint"):
            ServerThread(
                ServeConfig(backend="depa", checkpoint_dir=str(tmp_path))
            ).start()


class TestMetricsEndpoint:
    def test_prometheus_snapshot_over_http(self, small_workload):
        import urllib.request

        batch, _ = small_workload
        registry = MetricsRegistry()
        with make_server(registry) as srv:
            submit_batch("127.0.0.1", srv.port, batch)
            httpd = start_metrics_http(0, registry)
            try:
                base = f"http://127.0.0.1:{httpd.server_port}"
                body = urllib.request.urlopen(
                    f"{base}/metrics", timeout=5
                ).read().decode()
                assert "serve_sessions_total" in body
                assert "serve_events_total" in body
                with pytest.raises(Exception):
                    urllib.request.urlopen(f"{base}/nope", timeout=5)
            finally:
                httpd.shutdown()


class TestConfigValidation:
    def test_bad_credit_window_rejected(self):
        with pytest.raises(ServeError, match="credit window"):
            ServerThread(ServeConfig(credit_window=0)).start()

    def test_bad_jobs_rejected(self):
        with pytest.raises(ServeError, match="job"):
            ServerThread(ServeConfig(jobs=0)).start()

    def test_client_refuses_oversized_batch(self, small_workload):
        batch, _ = small_workload
        with make_server(max_frame=4096) as srv:
            with RaceClient("127.0.0.1", srv.port) as client:
                assert client.max_frame == 4096
                with pytest.raises(ProtocolError, match="slice it smaller"):
                    client.send_batch(batch)


@pytest.mark.predict
class TestPredictMode:
    def test_predict_session_streams_pair_reports(self, small_workload):
        """A predict-mode server runs the shb engine per session: the
        served reports match a local predict replay exactly, and they
        cover everything the observed-order engine flags."""
        batch, _interner = small_workload
        predict_engine = BatchEngine(predict=True)
        predict_engine.ingest(batch)
        local_predicted = race_multiset(predict_engine.races())
        assert local_predicted, "workload should carry predictable races"

        with make_server(predict=True) as srv:
            summary = submit_batch("127.0.0.1", srv.port, batch)
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local_predicted

        observed = Counter()
        for (task, loc, kind, _prior), n in local_race_multiset(batch).items():
            observed[(task, loc, kind)] += n
        predicted = Counter(
            (r.task, r.loc, r.kind) for r in summary.reports
        )
        assert observed <= predicted

    def test_predict_rejects_shared_parallel_mode(self):
        with pytest.raises(ServeError, match="jobs"):
            ServerThread(ServeConfig(predict=True, jobs=2)).start()

    def test_predict_rejects_checkpointing(self, tmp_path):
        with pytest.raises(ServeError, match="checkpoint"):
            ServerThread(
                ServeConfig(predict=True, checkpoint_dir=str(tmp_path))
            ).start()
