"""Property sweep: random spawn-sync programs served over the wire.

The unit tests pin individual codecs and session behaviours; this
sweep closes the loop end to end.  Each example builds a random
series-parallel spawn-sync program (the generator from the engine's
differential sweep), captures its trace with a :class:`BatchBuilder`,
ships the batch client -> server -> per-session :class:`BatchEngine`
in small BATCH frames, and checks the streamed race reports against a
local replay of the same batch -- as a multiset, since slicing the
stream must not change *what* races, only when the reports arrive.

One server thread serves the whole sweep (sessions are isolated, so
examples cannot contaminate each other and shrinking stays sound).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.engine.batch import BatchBuilder
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from repro.serve import RaceClient, ServeConfig, ServerThread

from tests.engine.test_property_differential import (
    _cilk_program,
    spawn_sync_cases,
)

from .conftest import local_race_multiset, race_multiset

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def wire_server():
    srv = ServerThread(
        ServeConfig(credit_window=4, queue_high_water=3),
        registry=MetricsRegistry(),
    )
    with srv:
        yield srv


class TestWireMatchesLocalReplay:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=spawn_sync_cases())
    def test_streamed_races_equal_local_multiset(self, wire_server, case):
        tree, plan = case
        builder = BatchBuilder()
        run(_cilk_program(tree, plan), observers=[builder])
        batch = builder.batch
        local = local_race_multiset(batch)
        with RaceClient("127.0.0.1", wire_server.port) as client:
            # tiny frames force mid-program session state on the server
            client.send_batches(batch, batch_size=32)
            summary = client.finish()
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local
