"""Property sweep: random spawn-sync programs through the gateway.

The per-location argument says hash-sharding accesses across
independent detectors is *exact* -- so for every random
series-parallel program, the race multiset streamed back by a 1-, 2-,
or 4-worker gateway must equal a serial :class:`BatchEngine` replay.
A second sweep SIGKILLs a random worker at a random batch boundary
mid-stream and demands the same equality -- migration under kill
moves work, never verdicts.

One cluster per worker count serves its whole sweep (worker processes
are expensive to spawn; sessions are isolated, so examples cannot
contaminate each other and shrinking stays sound).  The kill sweep
shares the 2-worker cluster: its supervisor respawns the victim, so
the cluster is whole again for the next example.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.batch import BatchBuilder
from repro.forkjoin.interpreter import run
from repro.obs.registry import MetricsRegistry
from repro.serve import ClusterConfig, ClusterThread, RaceClient

from tests.engine.test_property_differential import (
    _cilk_program,
    spawn_sync_cases,
)

from .conftest import local_race_multiset, race_multiset

pytestmark = pytest.mark.serve


def _capture(case):
    tree, plan = case
    builder = BatchBuilder()
    run(_cilk_program(tree, plan), observers=[builder])
    return builder.batch


@pytest.fixture(scope="module")
def cluster1():
    with ClusterThread(
        ClusterConfig(workers=1, checkpoint_interval=2),
        registry=MetricsRegistry(),
    ) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def cluster2():
    with ClusterThread(
        ClusterConfig(workers=2, checkpoint_interval=2),
        registry=MetricsRegistry(),
    ) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def cluster4():
    with ClusterThread(
        ClusterConfig(workers=4, checkpoint_interval=2),
        registry=MetricsRegistry(),
    ) as cluster:
        yield cluster


def _assert_gateway_exact(cluster, batch):
    local = local_race_multiset(batch)
    with RaceClient("127.0.0.1", cluster.port) as client:
        # tiny frames force mid-program routing state at the gateway
        client.send_batches(batch, batch_size=32)
        summary = client.finish()
    assert summary.events == len(batch)
    assert race_multiset(summary.reports) == local


class TestGatewayMatchesLocalReplay:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=spawn_sync_cases())
    def test_one_worker(self, cluster1, case):
        _assert_gateway_exact(cluster1, _capture(case))

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=spawn_sync_cases())
    def test_two_workers(self, cluster2, case):
        _assert_gateway_exact(cluster2, _capture(case))

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=spawn_sync_cases())
    def test_four_workers(self, cluster4, case):
        _assert_gateway_exact(cluster4, _capture(case))


class TestGatewayMigratesUnderKill:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        case=spawn_sync_cases(),
        kill_token=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_kill_at_random_boundary(self, cluster2, case, kill_token):
        batch = _capture(case)
        local = local_race_multiset(batch)
        pieces = list(batch.slices(32))
        kill_at = kill_token % len(pieces)
        victim = kill_token % 2
        client = RaceClient(
            "127.0.0.1", cluster2.port, timeout=30.0
        ).connect()
        try:
            for k, piece in enumerate(pieces):
                if k == kill_at:
                    cluster2.kill_worker(victim)
                client.send_batch(piece)
            summary = client.finish()
        finally:
            client.close()
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local
