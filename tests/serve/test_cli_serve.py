"""CLI coverage for ``repro serve`` / ``repro submit``.

Everything runs in-process against a loopback :class:`ServerThread`,
so the tests exercise exactly the code paths of the installed entry
point -- including the documented exit codes: 3 when the server cannot
bind, 4 when the client cannot connect, 5 when the conversation breaks
protocol.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cli import main
from repro.engine.benchlib import build_workload, capture
from repro.engine.tracefile import write_trace
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    EXIT_BIND_FAILURE,
    EXIT_CONNECT_FAILURE,
    EXIT_PROTOCOL_FAILURE,
    ServeConfig,
    ServerThread,
)

pytestmark = pytest.mark.serve


@pytest.fixture
def server():
    with ServerThread(
        ServeConfig(drain_timeout=2.0), registry=MetricsRegistry()
    ) as srv:
        yield srv


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestSubmit:
    def test_racegen_reports_races(self, server, capsys):
        rc = main([
            "submit", "--racegen", "2000",
            "--port", str(server.port), "--batch-size", "256",
        ])
        assert rc == 1  # races found
        out = capsys.readouterr().out
        assert "race report(s)" in out
        assert "racegen[2000]" in out

    def test_trace_file_round_trips(self, server, tmp_path, capsys):
        _events, batch, interner = capture(build_workload(2000))
        path = str(tmp_path / "workload.rpr2trc")
        write_trace(path, batch, interner)
        rc = main(["submit", path, "--port", str(server.port)])
        assert rc == 1
        assert f"submitted {len(batch)} events" in capsys.readouterr().out

    def test_ship_locations_prints_source_locations(self, server, capsys):
        rc = main([
            "submit", "--racegen", "2000", "--port", str(server.port),
            "--ship-locations", "--max-races", "3",
        ])
        assert rc == 1
        assert "race report(s)" in capsys.readouterr().out

    def test_sessions_runs_the_load_generator(self, server, capsys):
        rc = main([
            "submit", "--racegen", "1000", "--port", str(server.port),
            "--sessions", "3", "--batch-size", "128",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "3 sessions" in out and "events/sec" in out

    def test_needs_a_source(self, capsys):
        assert main(["submit"]) == 2
        assert "trace file, --racegen" in capsys.readouterr().err


class TestExitCodes:
    def test_connect_failure_is_4(self, capsys):
        rc = main([
            "submit", "--racegen", "10", "--port", str(free_port()),
        ])
        assert rc == EXIT_CONNECT_FAILURE
        assert "error:" in capsys.readouterr().err

    def test_protocol_failure_is_5(self, capsys):
        """A listener that answers HELLO with garbage bytes."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def bad_server():
            conn, _ = listener.accept()
            with conn:
                conn.recv(4096)  # swallow the HELLO
                conn.sendall(b"\xff" * 32)  # not a frame header

        thread = threading.Thread(target=bad_server, daemon=True)
        thread.start()
        try:
            rc = main([
                "submit", "--racegen", "10", "--port", str(port),
                "--timeout", "5",
            ])
        finally:
            thread.join(timeout=5)
            listener.close()
        assert rc == EXIT_PROTOCOL_FAILURE
        assert "error:" in capsys.readouterr().err

    def test_bind_failure_is_3(self, capsys):
        with socket.socket() as squatter:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            rc = main(["serve", "--port", str(port)])
        assert rc == EXIT_BIND_FAILURE
        assert "cannot bind" in capsys.readouterr().err


class TestParser:
    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 7521
        assert args.credit_window == 8
        assert args.jobs == 1
        assert args.metrics_port is None

    def test_submit_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["submit", "t.rpr2trc"])
        assert args.trace == "t.rpr2trc"
        assert args.sessions == 1
        assert args.batch_size == 8192
