"""Shared fixtures for the serving-layer tests.

Workloads are captured once per session (the interpreter run is the
expensive part); each test builds its own server so configuration and
metrics stay isolated.
"""

from __future__ import annotations

import socket
from collections import Counter

import pytest

from repro.engine.benchlib import build_workload, capture
from repro.engine.ingest import BatchEngine
from repro.serve import protocol as wire


@pytest.fixture(scope="session")
def small_workload():
    """~4k events of racy racegen traffic: ``(batch, interner)``."""
    _events, batch, interner = capture(build_workload(5_000))
    return batch, interner


@pytest.fixture(scope="session")
def big_workload():
    """The acceptance-criteria workload: a 100k-access racegen
    program (~101k events)."""
    _events, batch, interner = capture(build_workload(100_000))
    return batch, interner


def local_race_multiset(batch) -> Counter:
    """Replay ``batch`` through a fresh local BatchEngine; the race
    multiset every wire path must reproduce."""
    engine = BatchEngine()
    engine.ingest(batch)
    return race_multiset(engine.detector.races)


def race_multiset(reports) -> Counter:
    return Counter((r.task, r.loc, r.kind, r.prior_kind) for r in reports)


class RawConn:
    """A hand-rolled socket speaking raw RPRSERVE frames -- for the
    hostile-client tests the well-behaved :class:`RaceClient` cannot
    express."""

    def __init__(
        self,
        port: int,
        hello: bool = True,
        timeout: float = 10.0,
        backend: str = None,
        version: int = wire.PROTOCOL_VERSION,
        features: int = 0,
    ):
        self.sock = socket.create_connection(
            ("127.0.0.1", port), timeout=timeout
        )
        self.credit = 0
        self.max_frame = wire.DEFAULT_MAX_FRAME
        self.backend = None
        self.features = 0
        self.workers = 1
        if hello:
            self.send(
                wire.encode_frame(
                    wire.FRAME_HELLO,
                    wire.encode_hello(
                        backend=backend, version=version,
                        features=features,
                    ),
                )
            )
            ftype, payload = self.recv_frame()
            assert ftype == wire.FRAME_HELLO, wire.FRAME_NAMES[ftype]
            (_, self.credit, self.max_frame, self.backend, self.features,
             self.workers) = wire.decode_hello_reply(payload)

    def send(self, data: bytes) -> None:
        self.sock.sendall(data)

    def send_frame(self, ftype: int, payload: bytes = b"") -> None:
        self.send(wire.encode_frame(ftype, payload))

    def recv_exactly(self, n: int) -> bytes:
        chunks = []
        got = 0
        while got < n:
            chunk = self.sock.recv(n - got)
            if not chunk:
                raise ConnectionError("peer closed mid-frame")
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def recv_frame(self):
        head = self.recv_exactly(wire.FRAME_HEADER_SIZE)
        length, ftype, crc = wire.parse_frame_header(head)
        payload = self.recv_exactly(length) if length else b""
        wire.check_payload_crc(payload, crc)
        return ftype, payload

    def expect_error(self, code: int) -> str:
        """Skip CREDIT/RACES frames until an ERROR arrives; assert its
        code and return the server's message."""
        while True:
            ftype, payload = self.recv_frame()
            if ftype in (wire.FRAME_CREDIT, wire.FRAME_RACES):
                continue
            assert ftype == wire.FRAME_ERROR, wire.FRAME_NAMES[ftype]
            got, message = wire.decode_error(payload)
            assert got == code, (
                f"expected {wire.ERROR_NAMES[code]}, got "
                f"{wire.ERROR_NAMES.get(got, got)}: {message}"
            )
            return message

    def expect_eof(self) -> None:
        assert self.sock.recv(1) == b""

    def close(self) -> None:
        self.sock.close()

    def __enter__(self) -> "RawConn":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
