"""Unit tests for the sans-IO RPRSERVE wire protocol.

Every codec round-trips, and every decoder rejects hostile input
*before* it allocates: truncated headers, corrupted CRCs, oversized
frames, lying BATCH headers, foreign opcodes.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array

import pytest

from repro.core.reports import AccessKind, RaceReport
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_WRITE,
    BatchBuilder,
    EventBatch,
)
from repro.errors import ProtocolError, ReproError, ServeError
from repro.serve import protocol as wire

pytestmark = pytest.mark.serve


def small_batch() -> EventBatch:
    builder = BatchBuilder()
    builder.on_fork(0, 1)
    builder.on_write(0, "x")
    builder.on_read(1, "x")
    builder.on_halt(1)
    builder.on_join(0, 1)
    return builder.batch


def test_error_hierarchy():
    assert issubclass(ProtocolError, ServeError)
    assert issubclass(ServeError, ReproError)


class TestFraming:
    def test_round_trip(self):
        frame = wire.encode_frame(wire.FRAME_CREDIT, b"abcd")
        length, ftype, crc = wire.parse_frame_header(
            frame[: wire.FRAME_HEADER_SIZE]
        )
        assert (length, ftype) == (4, wire.FRAME_CREDIT)
        payload = frame[wire.FRAME_HEADER_SIZE:]
        wire.check_payload_crc(payload, crc)
        assert payload == b"abcd"

    def test_empty_payload(self):
        frame = wire.encode_frame(wire.FRAME_BYE)
        length, ftype, crc = wire.parse_frame_header(frame)
        assert (length, ftype) == (0, wire.FRAME_BYE)
        wire.check_payload_crc(b"", crc)

    def test_unknown_type_rejected_both_ways(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            wire.encode_frame(42, b"")
        head = struct.pack("<IBI", 0, 99, 0)
        with pytest.raises(ProtocolError, match="unknown frame type"):
            wire.parse_frame_header(head)

    def test_truncated_header_rejected(self):
        frame = wire.encode_frame(wire.FRAME_BYE)
        with pytest.raises(ProtocolError, match="truncated frame header"):
            wire.parse_frame_header(frame[:5])

    def test_bad_crc_rejected(self):
        frame = wire.encode_frame(wire.FRAME_CREDIT, b"abcd")
        _, _, crc = wire.parse_frame_header(frame)
        with pytest.raises(ProtocolError, match="CRC mismatch"):
            wire.check_payload_crc(b"abce", crc)

    def test_oversized_frame_rejected_before_payload(self):
        with pytest.raises(ProtocolError, match="exceeds the negotiated"):
            wire.check_frame_length(1025, 1024)
        wire.check_frame_length(1024, 1024)  # at the cap is fine


class TestHello:
    def test_client_hello_round_trip(self):
        version, max_frame, backend, features = wire.decode_hello(
            wire.encode_hello(4096)
        )
        assert version == wire.PROTOCOL_VERSION
        assert max_frame == 4096
        assert backend is None  # all-NUL field = server default
        assert features == 0

    def test_client_hello_backend_round_trip(self):
        version, max_frame, backend, features = wire.decode_hello(
            wire.encode_hello(4096, backend="depa")
        )
        assert version == wire.PROTOCOL_VERSION
        assert (max_frame, backend, features) == (4096, "depa", 0)

    def test_client_hello_features_round_trip(self):
        version, max_frame, backend, features = wire.decode_hello(
            wire.encode_hello(
                4096, backend="depa", features=wire.FLAG_CBATCH
            )
        )
        assert version == wire.PROTOCOL_VERSION
        assert (max_frame, backend) == (4096, "depa")
        assert features & wire.FLAG_CBATCH

    def test_v2_client_hello_still_decodes(self):
        payload = wire.encode_hello(4096, version=2)
        assert len(payload) == 16  # the frozen v2 wire shape
        version, max_frame, backend, features = wire.decode_hello(payload)
        assert (version, max_frame, backend, features) == (
            2, 4096, None, 0
        )

    def test_v3_client_hello_still_decodes(self):
        payload = wire.encode_hello(4096, backend="depa", version=3)
        assert len(payload) == 32  # the frozen v3 wire shape
        version, max_frame, backend, features = wire.decode_hello(payload)
        assert (version, max_frame, backend, features) == (
            3, 4096, "depa", 0
        )

    def test_v2_hello_cannot_carry_a_backend(self):
        with pytest.raises(ProtocolError, match="backend"):
            wire.encode_hello(4096, backend="depa", version=2)

    def test_pre_v4_hello_cannot_carry_features(self):
        with pytest.raises(ProtocolError, match="feature flags"):
            wire.encode_hello(4096, features=wire.FLAG_CBATCH, version=3)
        with pytest.raises(ProtocolError, match="feature flags"):
            wire.encode_hello_reply(
                8, 65536, features=wire.FLAG_CBATCH, version=3
            )

    def test_backend_name_bounds(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            wire.encode_hello(4096, backend="x" * 17)
        with pytest.raises(ProtocolError, match="ASCII"):
            wire.encode_hello(4096, backend="dépa")

    def test_server_reply_round_trip(self):
        version, credit, max_frame, backend, features, workers = (
            wire.decode_hello_reply(
                wire.encode_hello_reply(
                    8, 65536, backend="lattice2d",
                    features=wire.FLAG_CBATCH, workers=4,
                )
            )
        )
        assert version == wire.PROTOCOL_VERSION
        assert (credit, max_frame) == (8, 65536)
        assert backend == "lattice2d"
        assert features & wire.FLAG_CBATCH
        assert workers == 4

    def test_v2_server_reply_still_decodes(self):
        payload = wire.encode_hello_reply(8, 65536, version=2)
        assert len(payload) == 24  # the frozen v2 wire shape
        version, credit, max_frame, backend, features, workers = (
            wire.decode_hello_reply(payload)
        )
        assert (version, credit, max_frame, backend, features) == (
            2, 8, 65536, None, 0
        )
        assert workers == 1  # pre-v5 servers never say; one is implied

    def test_v3_server_reply_still_decodes(self):
        payload = wire.encode_hello_reply(
            8, 65536, backend="depa", version=3
        )
        assert len(payload) == 40  # the frozen v3 wire shape
        version, credit, max_frame, backend, features, workers = (
            wire.decode_hello_reply(payload)
        )
        assert (version, credit, max_frame, backend, features, workers) == (
            3, 8, 65536, "depa", 0, 1
        )

    def test_v4_server_reply_still_decodes(self):
        payload = wire.encode_hello_reply(
            8, 65536, backend="depa", features=wire.FLAG_CBATCH, version=4
        )
        assert len(payload) == 44  # the frozen v4 wire shape
        version, credit, max_frame, backend, features, workers = (
            wire.decode_hello_reply(payload)
        )
        assert (version, credit, max_frame, backend, features, workers) == (
            4, 8, 65536, "depa", wire.FLAG_CBATCH, 1
        )

    def test_v5_server_reply_carries_worker_count(self):
        payload = wire.encode_hello_reply(
            8, 65536, backend="lattice2d", version=5, workers=2
        )
        assert len(payload) == 48  # the frozen v5 wire shape
        version, credit, max_frame, backend, features, workers = (
            wire.decode_hello_reply(payload)
        )
        assert (version, credit, max_frame, backend, features, workers) == (
            5, 8, 65536, "lattice2d", 0, 2
        )

    def test_worker_count_bounds(self):
        with pytest.raises(ProtocolError, match="worker"):
            wire.encode_hello_reply(8, 65536, workers=0)
        payload = bytearray(
            wire.encode_hello_reply(8, 65536, version=5, workers=1)
        )
        struct.pack_into("<I", payload, len(payload) - 4, 0)
        with pytest.raises(ProtocolError, match="worker"):
            wire.decode_hello_reply(bytes(payload))

    def test_pre_v5_reply_cannot_carry_workers(self):
        # a multi-worker gateway must not silently drop the count for
        # an old client asking v4: encode refuses, the server decides
        with pytest.raises(ProtocolError, match="worker"):
            wire.encode_hello_reply(8, 65536, version=4, workers=2)

    def test_bad_magic_rejected(self):
        payload = struct.pack("<8sII", b"NOTMAGIC", 1, 4096)
        with pytest.raises(ProtocolError, match="magic"):
            wire.decode_hello(payload)

    def test_version_mismatch_rejected_client_side(self):
        payload = struct.pack(
            "<8sIIII", wire.PROTOCOL_MAGIC, 99, 8, 65536, 0
        )
        with pytest.raises(ProtocolError, match="version"):
            wire.decode_hello_reply(payload)

    def test_version_left_to_the_server_on_client_hello(self):
        payload = struct.pack("<8sII", wire.PROTOCOL_MAGIC, 99, 4096)
        version, _, _, _ = wire.decode_hello(payload)
        assert version == 99  # decoded, not rejected: the server answers

    def test_bad_lengths_rejected(self):
        with pytest.raises(ProtocolError):
            wire.decode_hello(b"short")
        with pytest.raises(ProtocolError):
            wire.decode_hello_reply(b"short")


class TestBatchPayload:
    def test_round_trip_without_table(self):
        batch = small_batch()
        decoded, locations, seq = wire.decode_batch_payload(
            wire.encode_batch_payload(batch)
        )
        assert locations is None
        assert seq == 0
        assert decoded.ops == batch.ops
        assert decoded.a == batch.a
        assert decoded.b == batch.b

    def test_round_trip_with_table(self):
        builder = BatchBuilder()
        builder.on_write(0, "x")
        builder.on_read(0, ("tuple", 3))
        payload = wire.encode_batch_payload(
            builder.batch, builder.interner.locations()
        )
        decoded, locations, seq = wire.decode_batch_payload(payload)
        assert locations == ["x", ("tuple", 3)]
        assert seq == 0
        assert decoded.b == builder.batch.b

    def test_sequence_number_round_trips(self):
        payload = wire.encode_batch_payload(small_batch(), seq=17)
        _decoded, _locations, seq = wire.decode_batch_payload(payload)
        assert seq == 17

    def test_empty_batch_round_trips(self):
        empty = EventBatch(array("B"), array("i"), array("i"))
        decoded, locations, _seq = wire.decode_batch_payload(
            wire.encode_batch_payload(empty)
        )
        assert len(decoded) == 0 and locations is None

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated BATCH header"):
            wire.decode_batch_payload(b"\x00" * 8)

    def test_lying_event_count_rejected_before_allocation(self):
        payload = bytearray(wire.encode_batch_payload(small_batch()))
        # inflate the declared n_events without adding column bytes
        struct.pack_into("<Q", payload, 8, 10_000_000)
        with pytest.raises(ProtocolError, match="lying BATCH header"):
            wire.decode_batch_payload(bytes(payload))

    def test_lying_table_length_rejected(self):
        payload = bytearray(wire.encode_batch_payload(small_batch()))
        struct.pack_into("<Q", payload, 16, 4096)
        with pytest.raises(ProtocolError, match="lying BATCH header"):
            wire.decode_batch_payload(bytes(payload))

    def test_short_payload_rejected(self):
        payload = wire.encode_batch_payload(small_batch())
        with pytest.raises(ProtocolError, match="lying BATCH header"):
            wire.decode_batch_payload(payload[:-1])

    def test_bad_endian_flag_rejected(self):
        payload = bytearray(wire.encode_batch_payload(small_batch()))
        payload[0] = 7
        with pytest.raises(ProtocolError, match="endianness"):
            wire.decode_batch_payload(bytes(payload))

    def test_corrupt_table_json_rejected(self):
        builder = BatchBuilder()
        builder.on_write(0, "x")
        payload = bytearray(
            wire.encode_batch_payload(
                builder.batch, builder.interner.locations()
            )
        )
        payload[wire._BATCH_HEADER.size] = 0xFF  # stomp the JSON
        with pytest.raises(ProtocolError, match="location table"):
            wire.decode_batch_payload(bytes(payload))

    def test_foreign_endian_columns_byteswapped(self):
        batch = small_batch()
        a_sw = array("i", batch.a)
        b_sw = array("i", batch.b)
        a_sw.byteswap()
        b_sw.byteswap()
        flag = 1 if sys.byteorder == "little" else 0
        head = struct.pack("<B7xQQQ", flag, len(batch), 0, 0)
        payload = head + batch.ops.tobytes() + a_sw.tobytes() + b_sw.tobytes()
        decoded, _, _ = wire.decode_batch_payload(payload)
        assert decoded.a == batch.a
        assert decoded.b == batch.b


class TestCBatchPayload:
    def compressed(self, reps: int = 6):
        from repro.compress import compress

        builder = BatchBuilder()
        for _ in range(reps):
            for k in range(8):
                builder.on_write(0, ("loc", k))
        return compress(builder.batch, 8), builder.interner

    def test_round_trip_without_table(self):
        ctrace, _ = self.compressed()
        decoded, locations, seq = wire.decode_cbatch_payload(
            wire.encode_cbatch_payload(ctrace)
        )
        assert locations is None and seq == 0
        assert len(decoded.blocks) == len(ctrace.blocks) == 1
        assert decoded.rules == ctrace.rules
        assert decoded.n_events == ctrace.n_events
        raw = ctrace.decompress()
        out = decoded.decompress()
        assert (out.ops, out.a, out.b) == (raw.ops, raw.a, raw.b)

    def test_round_trip_with_table_and_seq(self):
        ctrace, interner = self.compressed()
        payload = wire.encode_cbatch_payload(
            ctrace, interner.locations(), seq=41
        )
        decoded, locations, seq = wire.decode_cbatch_payload(payload)
        assert seq == 41
        assert locations == [("loc", k) for k in range(8)]
        assert decoded.block_width == ctrace.block_width

    def test_wire_bytes_beat_the_expanded_batch(self):
        ctrace, _ = self.compressed(reps=64)
        cframe = wire.encode_cbatch_payload(ctrace)
        frame = wire.encode_batch_payload(ctrace.decompress())
        assert len(cframe) * 3 <= len(frame)

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated CBATCH"):
            wire.decode_cbatch_payload(b"\x00" * 8)

    def test_lying_block_count_rejected_before_allocation(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        struct.pack_into("<Q", payload, 16, 1 << 40)  # n_blocks
        with pytest.raises(ProtocolError, match="lying CBATCH header"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_lying_event_count_rejected(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        struct.pack_into("<Q", payload, 8, 10_000_000)  # n_events
        with pytest.raises(ProtocolError, match="expand to"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_short_payload_rejected(self):
        ctrace, _ = self.compressed()
        payload = wire.encode_cbatch_payload(ctrace)
        with pytest.raises(ProtocolError, match="CBATCH"):
            wire.decode_cbatch_payload(payload[:-1])

    def test_bad_block_width_rejected(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        struct.pack_into("<I", payload, 4, 0)  # block width
        with pytest.raises(ProtocolError, match="block width"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_oversized_block_length_rejected(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        struct.pack_into(  # the one length entry: beyond the width
            "<I", payload, wire._CBATCH_HEADER.size, 9
        )
        with pytest.raises(ProtocolError, match="claims 9 events"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_rule_referencing_missing_block_rejected(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        struct.pack_into("<II", payload, len(payload) - 8, 7, 6)
        with pytest.raises(ProtocolError, match="references block 7"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_zero_repeat_rule_rejected(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        struct.pack_into("<II", payload, len(payload) - 8, 0, 0)
        with pytest.raises(ProtocolError, match="zero repeat"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_bad_endian_flag_rejected(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        payload[0] = 7
        with pytest.raises(ProtocolError, match="endianness"):
            wire.decode_cbatch_payload(bytes(payload))

    def test_foreign_endian_columns_byteswapped(self):
        ctrace, _ = self.compressed()
        payload = bytearray(wire.encode_cbatch_payload(ctrace))
        payload[0] = 1 if sys.byteorder == "little" else 0
        block = ctrace.blocks[0]
        off = wire._CBATCH_HEADER.size + 4  # table empty, one length
        a_off = off + len(block)
        a_sw = array("i", block.a)
        b_sw = array("i", block.b)
        a_sw.byteswap()
        b_sw.byteswap()
        swapped = a_sw.tobytes() + b_sw.tobytes()
        payload[a_off: a_off + len(swapped)] = swapped
        decoded, _, _ = wire.decode_cbatch_payload(bytes(payload))
        assert decoded.blocks[0].a == block.a
        assert decoded.blocks[0].b == block.b


class TestColumnValidation:
    def test_clean_batch_passes(self):
        wire.validate_batch_columns(small_batch())
        wire.validate_batch_columns(small_batch(), table_size=1)

    def test_empty_batch_passes(self):
        wire.validate_batch_columns(
            EventBatch(array("B"), array("i"), array("i"))
        )

    def test_unknown_opcode_rejected(self):
        bad = EventBatch(
            array("B", [OP_FORK, 17]), array("i", [0, 0]),
            array("i", [1, -1]),
        )
        with pytest.raises(ProtocolError, match="unknown opcode"):
            wire.validate_batch_columns(bad)

    def test_negative_access_location_rejected(self):
        bad = EventBatch(
            array("B", [OP_WRITE]), array("i", [0]), array("i", [-3])
        )
        with pytest.raises(ProtocolError, match="location id"):
            wire.validate_batch_columns(bad)

    def test_structural_minus_one_is_fine(self):
        ok = EventBatch(
            array("B", [OP_HALT, OP_JOIN]), array("i", [1, 0]),
            array("i", [-1, 1]),
        )
        wire.validate_batch_columns(ok)

    def test_access_beyond_shipped_table_rejected(self):
        bad = EventBatch(
            array("B", [OP_READ]), array("i", [0]), array("i", [5])
        )
        with pytest.raises(ProtocolError, match="table has 2 entries"):
            wire.validate_batch_columns(bad, table_size=2)

    def test_table_bound_ignored_when_table_not_shipped(self):
        ok = EventBatch(
            array("B", [OP_READ]), array("i", [0]), array("i", [5])
        )
        wire.validate_batch_columns(ok, table_size=None)


class TestSmallCodecs:
    def test_credit(self):
        assert wire.decode_credit(wire.encode_credit(3)) == 3
        with pytest.raises(ProtocolError):
            wire.decode_credit(b"xx")

    def test_error(self):
        code, msg = wire.decode_error(
            wire.encode_error(wire.ERR_BAD_CRC, "checksum no")
        )
        assert code == wire.ERR_BAD_CRC
        assert msg == "checksum no"
        with pytest.raises(ProtocolError):
            wire.decode_error(b"x")

    def test_bye_summary(self):
        assert wire.decode_bye_summary(
            wire.encode_bye_summary(100_000, 7)
        ) == (100_000, 7)
        with pytest.raises(ProtocolError):
            wire.decode_bye_summary(b"short")

    def test_races_round_trip(self):
        reports = [
            RaceReport(
                loc=3, task=2, kind=AccessKind.WRITE,
                prior_kind=AccessKind.READ, prior_repr=1, op_index=17,
            ),
            RaceReport(
                loc=0, task=5, kind=AccessKind.READ,
                prior_kind=AccessKind.WRITE, prior_repr=4, op_index=99,
            ),
        ]
        seq, decoded = wire.decode_races(wire.encode_races(reports, seq=9))
        assert seq == 9
        assert decoded == reports

    def test_races_accepts_v1_bare_list(self):
        rows = json.dumps(
            [
                {
                    "loc": 3, "task": 2, "kind": "write",
                    "prior_kind": "read", "prior_repr": 1, "op_index": 17,
                }
            ]
        ).encode()
        seq, decoded = wire.decode_races(rows)
        assert seq == 0
        assert decoded[0].loc == 3 and decoded[0].task == 2

    def test_races_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="corrupt RACES"):
            wire.decode_races(b"not json")
        with pytest.raises(ProtocolError, match="bad object shape"):
            wire.decode_races(b"{}")
        with pytest.raises(ProtocolError, match="not a list or object"):
            wire.decode_races(b"3")
        row = json.dumps([{"loc": 1}]).encode()
        with pytest.raises(ProtocolError, match="corrupt RACES"):
            wire.decode_races(row)

    def test_resume_and_ack_codecs(self):
        assert wire.decode_resume(wire.encode_resume("sess-1.a_b")) == (
            "sess-1.a_b"
        )
        assert wire.decode_resume_reply(wire.encode_resume_reply(41)) == 41
        assert wire.decode_ack(wire.encode_ack(7)) == 7
        with pytest.raises(ProtocolError):
            wire.decode_resume_reply(b"xx")
        with pytest.raises(ProtocolError):
            wire.decode_ack(b"xx")

    def test_session_token_validation(self):
        assert wire.valid_session_token("a")
        assert wire.valid_session_token("A-b_c.9")
        assert not wire.valid_session_token("")
        assert not wire.valid_session_token(".hidden")
        assert not wire.valid_session_token("a/b")  # path separator
        assert not wire.valid_session_token("a" * 129)
        with pytest.raises(ProtocolError, match="bad session token"):
            wire.encode_resume("../escape")
        with pytest.raises(ProtocolError, match="bad session token"):
            wire.decode_resume(b"has space")
        with pytest.raises(ProtocolError, match="not ASCII"):
            wire.decode_resume(b"\xff\xfe")
