"""Integration tests for compressed (CBATCH) serving -- protocol v4.

A session that negotiates the CBATCH feature bit ships grammar-
compressed traces the server ingests through the memoized kernel, and
must report exactly the races a raw-batch session (and a local replay)
reports.  Refusals are typed and happen before the stream starts.
"""

from __future__ import annotations

import struct

import pytest

from repro.compress import compress
from repro.engine.batch import EventBatch
from repro.engine.benchlib import capture
from repro.obs.registry import MetricsRegistry
from repro.serve import RaceClient, RemoteError, submit_batch
from repro.serve import protocol as wire
from repro.workloads.racegen import loop_program

from .conftest import RawConn, local_race_multiset, race_multiset
from .test_server import counter_value, make_server

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def loop_workload():
    """A block-repetitive racy loop workload: ``(batch, interner)``."""
    _events, batch, interner = capture(
        loop_program(4, 40, 64, racy=True)
    )
    return batch, interner


class TestCompressedRoundTrip:
    def test_compressed_session_matches_local_replay(self, loop_workload):
        batch, _ = loop_workload
        local = local_race_multiset(batch)
        registry = MetricsRegistry()
        with make_server(registry) as srv:
            summary = submit_batch(
                "127.0.0.1", srv.port, batch, compress=True
            )
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local
        assert counter_value(registry, "serve_cbatches_total") > 0
        assert counter_value(registry, "serve_batches_total") == 0
        # The memoized kernel, not the expanding path, did the work.
        assert counter_value(
            registry, "engine_dispatch_total", path="memo"
        ) > 0

    def test_compressed_wire_bytes_beat_raw(self, loop_workload):
        """The point of CBATCH: the loops workload crosses the wire in
        at most a third of the raw-batch bytes."""
        batch, _ = loop_workload
        raw_bytes = sum(
            len(wire.encode_batch_payload(piece))
            for piece in batch.slices(8192)
        )
        registry = MetricsRegistry()
        with make_server(registry) as srv:
            submit_batch("127.0.0.1", srv.port, batch, compress=True)
        compressed = counter_value(registry, "serve_compressed_bytes_total")
        assert 0 < compressed <= raw_bytes / 3

    def test_compressed_depa_session(self, loop_workload):
        """compress=True composes with backend negotiation."""
        batch, _ = loop_workload
        local = local_race_multiset(batch)
        with make_server() as srv:
            with RaceClient(
                "127.0.0.1", srv.port, backend="depa", compress=True
            ) as client:
                client.send_batches_compressed(batch)
                summary = client.finish()
            assert client.negotiated_backend == "depa"
        assert race_multiset(summary.reports) == local

    def test_mixed_raw_and_compressed_frames(self, loop_workload):
        """A compress session may still send raw BATCH frames; both
        kinds land in the same engine in order."""
        batch, _ = loop_workload
        local = local_race_multiset(batch)
        half = len(batch) // 2
        head = EventBatch(batch.ops[:half], batch.a[:half], batch.b[:half])
        tail = EventBatch(batch.ops[half:], batch.a[half:], batch.b[half:])
        with make_server() as srv:
            with RaceClient(
                "127.0.0.1", srv.port, compress=True
            ) as client:
                client.send_batch(head)
                client.send_compressed(compress(tail))
                summary = client.finish()
        assert summary.events == len(batch)
        assert race_multiset(summary.reports) == local


class TestCompressedNegotiation:
    def test_shared_pool_refuses_compression(self, loop_workload):
        with make_server(jobs=2) as srv:
            with pytest.raises(RemoteError) as exc_info:
                RaceClient(
                    "127.0.0.1", srv.port, compress=True
                ).connect()
            assert exc_info.value.code == wire.ERR_COMPRESS

    def test_predict_server_refuses_compression(self):
        with make_server(predict=True) as srv:
            with pytest.raises(RemoteError) as exc_info:
                RaceClient(
                    "127.0.0.1", srv.port, compress=True
                ).connect()
            assert exc_info.value.code == wire.ERR_COMPRESS

    def test_plain_session_gets_no_feature_bit(self):
        with make_server() as srv:
            with RawConn(srv.port) as conn:
                assert not conn.features & wire.FLAG_CBATCH
                conn.send_frame(wire.FRAME_BYE)

    def test_requesting_session_gets_the_bit(self):
        with make_server() as srv:
            with RawConn(srv.port, features=wire.FLAG_CBATCH) as conn:
                assert conn.features & wire.FLAG_CBATCH
                conn.send_frame(wire.FRAME_BYE)

    def test_cbatch_without_negotiation_is_refused(self, loop_workload):
        """Sending CBATCH on a session that never asked for it is a
        typed protocol violation, not a silent ingest."""
        batch, _ = loop_workload
        payload = wire.encode_cbatch_payload(compress(batch))
        with make_server() as srv:
            with RawConn(srv.port) as conn:
                conn.send_frame(wire.FRAME_CBATCH, payload)
                conn.expect_error(wire.ERR_COMPRESS)

    def test_v3_hello_still_round_trips(self, loop_workload):
        """A v3 client is byte-identically served -- the v4 bump is
        purely additive."""
        batch, _ = loop_workload
        local = local_race_multiset(batch)
        with make_server() as srv:
            with RawConn(srv.port, version=3) as conn:
                conn.send_frame(
                    wire.FRAME_BATCH, wire.encode_batch_payload(batch)
                )
                conn.send_frame(wire.FRAME_BYE)
                reports = []
                while True:
                    ftype, payload = conn.recv_frame()
                    if ftype == wire.FRAME_RACES:
                        _seq, rows = wire.decode_races(payload)
                        reports.extend(rows)
                    elif ftype == wire.FRAME_BYE:
                        break
        assert race_multiset(reports) == local


class TestCompressedHostility:
    def test_lying_cbatch_header_rejected(self, loop_workload):
        batch, _ = loop_workload
        payload = bytearray(
            wire.encode_cbatch_payload(compress(batch))
        )
        struct.pack_into("<Q", payload, 8, 10_000_000)  # n_events
        with make_server() as srv:
            with RawConn(srv.port, features=wire.FLAG_CBATCH) as conn:
                conn.send_frame(wire.FRAME_CBATCH, bytes(payload))
                conn.expect_error(wire.ERR_MALFORMED_BATCH)

    def test_unique_blocks_are_column_validated(self):
        """A compressed trace whose (single, much-repeated) block
        carries an unknown opcode is refused like a raw batch."""
        from array import array

        from repro.compress.blocks import CompressedTrace
        from repro.engine.batch import EventBatch

        bad_block = EventBatch(
            array("B", [17] * 4), array("i", [0] * 4),
            array("i", [-1] * 4),
        )
        bad = CompressedTrace(4, [bad_block], [(0, 100)])
        with make_server() as srv:
            with RawConn(srv.port, features=wire.FLAG_CBATCH) as conn:
                conn.send_frame(
                    wire.FRAME_CBATCH, wire.encode_cbatch_payload(bad)
                )
                conn.expect_error(wire.ERR_MALFORMED_BATCH)
