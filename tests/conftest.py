"""Shared fixtures and hypothesis strategies for the test-suite.

Set ``HYPOTHESIS_PROFILE=thorough`` for a soak run with 5x the examples
(used before releases; the default profile keeps CI fast).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st

settings.register_profile("default", settings())
settings.register_profile(
    "thorough",
    settings(max_examples=500, deadline=None),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.lattice.digraph import Digraph
from repro.lattice.generators import (
    figure2_lattice,
    figure3_diagram,
    figure3_lattice,
    grid_digraph,
    random_staircase,
)
from repro.lattice.poset import Poset
from repro.lattice.series_parallel import random_sp_tree, sp_digraph


@pytest.fixture
def fig3_graph() -> Digraph:
    return figure3_lattice()


@pytest.fixture
def fig3_poset(fig3_graph) -> Poset:
    return Poset(fig3_graph)


@pytest.fixture
def fig3_diagram():
    return figure3_diagram()


@pytest.fixture
def fig2_graph() -> Digraph:
    return figure2_lattice()


# -- hypothesis strategies ----------------------------------------------------


@st.composite
def staircase_lattices(draw, max_rows: int = 7, max_width: int = 6) -> Digraph:
    """Random staircase sublattices of grids (always 2D lattices)."""
    seed = draw(st.integers(0, 2**32 - 1))
    rows = draw(st.integers(1, max_rows))
    width = draw(st.integers(1, max_width))
    return random_staircase(rows, width, random.Random(seed))


@st.composite
def sp_digraphs(draw, max_leaves: int = 10) -> Digraph:
    """Random series-parallel DAGs (2D lattices, SP-recognisable)."""
    seed = draw(st.integers(0, 2**32 - 1))
    leaves = draw(st.integers(1, max_leaves))
    return sp_digraph(random_sp_tree(leaves, random.Random(seed)))


@st.composite
def grid_digraphs(draw, max_side: int = 6) -> Digraph:
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    return grid_digraph(rows, cols)


@st.composite
def completed_lattices(draw, max_base: int = 7) -> Digraph:
    """Random 2D lattices via Dedekind-MacNeille completion of random
    2D posets -- the most shape-diverse family in the pool."""
    from repro.lattice.completion import random_2d_lattice

    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(1, max_base))
    return random_2d_lattice(n, random.Random(seed))


@st.composite
def two_dim_lattices(draw) -> Digraph:
    """A mixed pool of 2D lattices from all generator families."""
    which = draw(st.integers(0, 3))
    if which == 0:
        return draw(staircase_lattices())
    if which == 1:
        return draw(sp_digraphs())
    if which == 2:
        return draw(grid_digraphs(max_side=4))
    return draw(completed_lattices())
