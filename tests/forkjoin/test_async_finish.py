"""Tests for the X10 async-finish sugar."""

from __future__ import annotations

import pytest

from repro.errors import StructureError
from repro.forkjoin import build_task_graph, read, run, step, write
from repro.forkjoin.async_finish import x10
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional
from repro.lattice.series_parallel import is_series_parallel


def leaf(ctx):
    yield write(("cell", ctx.handle.tid))


class TestBasics:
    def test_finish_joins_asyncs(self):
        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(leaf)
                yield from ctx.async_(leaf)
                yield step()

            yield from ctx.finish(block)
            yield read(("cell", 1))

        ex = run(main)
        assert ex.task_count == 3

    def test_implicit_root_finish(self):
        @x10
        def main(ctx):
            yield from ctx.async_(leaf)
            # no explicit finish: the implicit one joins it

        ex = run(main)
        assert ex.task_count == 2

    def test_nested_finishes(self):
        @x10
        def main(ctx):
            def inner():
                yield from ctx.async_(leaf)
                yield step()

            def outer():
                yield from ctx.async_(leaf)
                yield from ctx.finish(inner)
                yield from ctx.async_(leaf)

            yield from ctx.finish(outer)

        ex = run(main)
        assert ex.task_count == 4

    def test_finish_returns_block_value(self):
        @x10
        def main(ctx):
            def block():
                yield step()
                return 7

            got = yield from ctx.finish(block)
            return got

        assert run(main).result == 7


class TestEscapedAsyncs:
    def test_escaped_async_joined_by_outer_finish(self):
        """An async created by a descendant escapes to the enclosing
        finish of its creation -- X10's terminally-strict semantics."""
        spawned = []

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(spawner)
                yield step()

            yield from ctx.finish(block)
            # At this point the escapee must be joined too.
            yield read(("cell", spawned[0]))

        def spawner(ctx):
            h = yield from ctx.async_(leaf)  # escapes: spawner has no finish
            spawned.append(h.tid)
            yield step()

        ex = run(main)
        assert ex.task_count == 3

    def test_escaped_asyncs_can_be_non_sp_but_stay_2d(self):
        """Escapes can leave the SP class (why ESP-bags exists) while
        Theorem 6 keeps the graph a 2D lattice."""
        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(spawner)
                yield write("shared")

            yield from ctx.finish(block)
            yield read("shared")

        def spawner(ctx):
            yield from ctx.async_(leaf)
            yield step()

        ex = run(main, record_events=True)
        tg = build_task_graph(ex.events)
        poset = tg.poset
        assert poset.is_lattice()
        assert is_two_dimensional(poset)

    def test_non_escaping_is_sp(self):
        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(leaf)
                yield from ctx.async_(leaf)
                yield write("x")

            yield from ctx.finish(block)
            yield read("x")

        ex = run(main, record_events=True)
        tg = build_task_graph(ex.events)
        assert is_series_parallel(tg.graph.transitive_reduction())


class TestOrdering:
    def test_finish_orders_block_work(self):
        """Accesses after a finish are ordered after all block accesses."""
        from repro.detectors import Lattice2DDetector

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(writer)

            yield from ctx.finish(block)
            yield read("data")  # safely ordered after writer

        def writer(ctx):
            yield write("data")

        det = Lattice2DDetector()
        run(main, observers=[det])
        assert det.races == []

    def test_async_races_inside_block(self):
        from repro.detectors import Lattice2DDetector

        @x10
        def main(ctx):
            def block():
                yield from ctx.async_(writer)
                yield read("data")  # concurrent with the async's write

            yield from ctx.finish(block)

        def writer(ctx):
            yield write("data")

        det = Lattice2DDetector()
        run(main, observers=[det])
        assert len(det.races) == 1
