"""Tests for the futures sugar and join-returns-value plumbing."""

from __future__ import annotations

import pytest

from repro.detectors import Lattice2DDetector
from repro.errors import StructureError
from repro.forkjoin import fork, join, read, run, write
from repro.forkjoin.futures import futures
from repro.forkjoin.taskgraph import build_task_graph
from repro.lattice.series_parallel import is_series_parallel


class TestJoinReturnsValue:
    def test_plain_join_yields_child_result(self):
        def child(self):
            yield write("x")
            return 99

        def main(self):
            c = yield fork(child)
            got = yield join(c)
            return got

        assert run(main).result == 99

    def test_join_of_valueless_child_yields_none(self):
        def child(self):
            yield write("x")

        def main(self):
            c = yield fork(child)
            got = yield join(c)
            assert got is None

        run(main)


class TestFutures:
    def test_create_and_force_in_lifo_order(self):
        @futures
        def work(ctx, n):
            yield write(("slot", n))
            return n * 10

        @futures
        def main(ctx):
            a = yield from ctx.future(work, 1)
            b = yield from ctx.future(work, 2)
            vb = yield from ctx.force(b)
            va = yield from ctx.force(a)
            return va + vb

        assert run(main).result == 30

    def test_force_out_of_order_caches_intermediates(self):
        @futures
        def work(ctx, n):
            yield write(("slot", n))
            return n

        @futures
        def main(ctx):
            a = yield from ctx.future(work, 1)
            b = yield from ctx.future(work, 2)
            c = yield from ctx.future(work, 3)
            va = yield from ctx.force(a)   # forces c, b along the way
            vc = yield from ctx.force(c)   # served from the cache
            vb = yield from ctx.force(b)
            return (va, vb, vc)

        assert run(main).result == (1, 2, 3)

    def test_unforced_futures_drained_at_exit(self):
        @futures
        def work(ctx):
            yield write("w")
            return "ignored"

        @futures
        def main(ctx):
            yield from ctx.future(work)
            yield from ctx.future(work)
            # never forced: the decorator drains them

        ex = run(main)
        assert ex.task_count == 3

    def test_forcing_foreign_future_rejected(self):
        @futures
        def work(ctx):
            yield write("w")

        @futures
        def main(ctx):
            fake = yield from ctx.future(work)
            yield from ctx.force(fake)
            with pytest.raises(StructureError, match="outstanding"):
                yield from ctx.force(fake)  # already consumed

        run(main)

    def test_nested_futures(self):
        @futures
        def inner(ctx, n):
            yield write(("inner", n))
            return n + 1

        @futures
        def outer(ctx, n):
            f = yield from ctx.future(inner, n)
            v = yield from ctx.force(f)
            return v * 2

        @futures
        def main(ctx):
            f = yield from ctx.future(outer, 5)
            return (yield from ctx.force(f))

        assert run(main).result == 12

    def test_future_race_detected(self):
        @futures
        def producer(ctx):
            yield write("shared", label="producer")
            return 1

        @futures
        def main(ctx):
            f = yield from ctx.future(producer)
            yield read("shared", label="unforced-read")  # before force!
            yield from ctx.force(f)
            yield read("shared")  # after force: safe

        det = Lattice2DDetector()
        run(main, observers=[det])
        assert len(det.races) == 1
        assert det.races[0].label == "unforced-read"

    def test_lifo_futures_graph_is_sp(self):
        @futures
        def work(ctx, n):
            yield write(("slot", n))
            return n

        @futures
        def main(ctx):
            a = yield from ctx.future(work, 1)
            b = yield from ctx.future(work, 2)
            yield from ctx.force(b)
            yield from ctx.force(a)

        ex = run(main, record_events=True)
        tg = build_task_graph(ex.events)
        assert is_series_parallel(tg.graph.transitive_reduction())
