"""Focused tests for the effect vocabulary."""

from __future__ import annotations

import pytest

from repro.forkjoin.program import (
    AnnotateEffect,
    ForkEffect,
    JoinEffect,
    JoinLeftEffect,
    ReadEffect,
    StepEffect,
    TaskHandle,
    WriteEffect,
    annotate,
    fork,
    join,
    join_left,
    read,
    step,
    write,
)


class TestConstructors:
    def test_fork_captures_body_and_args(self):
        def body(self):
            yield step()

        eff = fork(body, 1, 2, label="here")
        assert isinstance(eff, ForkEffect)
        assert eff.body is body
        assert eff.args == (1, 2)
        assert eff.label == "here"
        assert eff.name == "body"

    def test_fork_name_override(self):
        def body(self):
            yield step()

        assert fork(body, name="custom").name == "custom"

    def test_join_wraps_handle(self):
        h = TaskHandle(3, "w")
        eff = join(h, label="sync-point")
        assert isinstance(eff, JoinEffect)
        assert eff.handle is h and eff.label == "sync-point"

    def test_join_left(self):
        assert isinstance(join_left(), JoinLeftEffect)
        assert join_left(label="x").label == "x"

    def test_memory_effects(self):
        assert isinstance(read("loc"), ReadEffect)
        assert isinstance(write(("a", 1)), WriteEffect)
        assert read("loc").loc == "loc"
        assert write("loc", label="w").label == "w"

    def test_step_and_annotate(self):
        assert isinstance(step(), StepEffect)
        eff = annotate("tag", {"k": 1})
        assert isinstance(eff, AnnotateEffect)
        assert eff.tag == "tag" and eff.data == {"k": 1}

    def test_effects_are_frozen(self):
        eff = read("x")
        with pytest.raises(AttributeError):
            eff.loc = "y"  # type: ignore[misc]


class TestTaskHandle:
    def test_equality_by_value(self):
        assert TaskHandle(1, "a") == TaskHandle(1, "a")
        assert TaskHandle(1, "a") != TaskHandle(2, "a")

    def test_repr_readable(self):
        assert "1" in repr(TaskHandle(1, "worker"))
        assert "worker" in repr(TaskHandle(1, "worker"))
        assert repr(TaskHandle(2)) == "<task 2>"

    def test_hashable(self):
        assert len({TaskHandle(1), TaskHandle(1), TaskHandle(2)}) == 2
