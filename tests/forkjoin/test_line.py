"""Tests for the task line of Figure 9."""

from __future__ import annotations

import pytest

from repro.errors import StructureError
from repro.forkjoin.line import TaskLine


class TestFork:
    def test_child_goes_left_of_parent(self):
        line = TaskLine(0)
        line.fork(0, 1)
        assert line.snapshot() == [1, 0]
        line.fork(0, 2)
        assert line.snapshot() == [1, 2, 0]  # newest child nearest

    def test_nested_forks(self):
        line = TaskLine(0)
        line.fork(0, 1)
        line.fork(1, 2)
        assert line.snapshot() == [2, 1, 0]

    def test_fork_duplicate_rejected(self):
        line = TaskLine(0)
        line.fork(0, 1)
        with pytest.raises(StructureError, match="already"):
            line.fork(0, 1)

    def test_fork_from_unknown_rejected(self):
        line = TaskLine(0)
        with pytest.raises(StructureError, match="not in the line"):
            line.fork(7, 1)


class TestJoin:
    def test_join_left_neighbour(self):
        line = TaskLine(0)
        line.fork(0, 1)
        line.join(0, 1)
        assert line.snapshot() == [0]

    def test_join_exposes_next_neighbour(self):
        line = TaskLine(0)
        line.fork(0, 1)
        line.fork(0, 2)
        line.join(0, 2)
        assert line.left_neighbor(0) == 1
        line.join(0, 1)
        assert line.left_neighbor(0) is None

    def test_join_non_neighbour_rejected(self):
        """The paper's core restriction: only the immediate left
        neighbour may be joined."""
        line = TaskLine(0)
        line.fork(0, 1)
        line.fork(0, 2)  # line: 1 2 0
        with pytest.raises(StructureError, match="immediate left"):
            line.join(0, 1)

    def test_join_removed_task_rejected(self):
        line = TaskLine(0)
        line.fork(0, 1)
        line.join(0, 1)
        with pytest.raises(StructureError, match="not in the line"):
            line.join(0, 1)

    def test_orphan_adoption(self):
        """Joining a task exposes its leftover children to the joiner --
        the construct that makes non-SP (2D) graphs expressible."""
        line = TaskLine(0)
        line.fork(0, 1)
        line.fork(1, 2)  # 1's child; line: 2 1 0
        line.join(0, 1)  # line: 2 0
        assert line.snapshot() == [2, 0]
        line.join(0, 2)
        assert line.snapshot() == [0]


class TestQueries:
    def test_len_and_contains(self):
        line = TaskLine(0)
        assert len(line) == 1 and 0 in line and 1 not in line
        line.fork(0, 1)
        assert len(line) == 2 and 1 in line

    def test_neighbours(self):
        line = TaskLine(0)
        line.fork(0, 1)
        assert line.right_neighbor(1) == 0
        assert line.left_neighbor(1) is None
        assert line.right_neighbor(0) is None

    def test_snapshot_empty_after_structural_ops(self):
        line = TaskLine(0)
        for child in range(1, 6):
            line.fork(0, child)
        for child in range(5, 0, -1):
            line.join(0, child)
        assert line.snapshot() == [0]
