"""Tests for execution synthesis -- the converse of Theorem 6.

For any (bounded) 2D lattice we must be able to produce a *valid*
structured fork-join event stream whose task graph is order-isomorphic
to the lattice.  Validity is certified by the strict replayer; the
isomorphism is checked vertex-by-vertex against the reconstruction.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import AccessKind
from repro.detectors import Lattice2DDetector, VectorClockDetector
from repro.detectors.offline2d import detect_races_on_lattice
from repro.errors import GraphError
from repro.forkjoin.replay import replay_events
from repro.forkjoin.synthesis import synthesize_events
from repro.forkjoin.taskgraph import build_task_graph
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram
from repro.lattice.generators import (
    diamond,
    figure2_lattice,
    figure3_lattice,
    grid_diagram,
)
from repro.lattice.poset import Poset

from tests.conftest import completed_lattices, sp_digraphs, staircase_lattices


def diagram_of(graph) -> Diagram:
    return Diagram.from_poset(Poset(graph))


def assert_realises(graph):
    """Synthesize, replay-validate, and check order isomorphism."""
    poset = Poset(graph)
    synth = synthesize_events(diagram_of(graph))
    replay_events(synth.events)  # strict validation
    tg = build_task_graph(synth.events)
    vs = list(graph.vertices())
    for x in vs:
        for y in vs:
            if x == y:
                continue
            assert poset.leq(x, y) == tg.poset.leq(
                synth.step_event_of[x], synth.step_event_of[y]
            ), (x, y)
    return synth


class TestFixedLattices:
    def test_diamond(self):
        synth = assert_realises(diamond())
        assert synth.task_count == 2  # one fork suffices

    def test_figure2(self):
        assert_realises(figure2_lattice())

    def test_figure3(self):
        synth = assert_realises(figure3_lattice())
        # Section 4's thread decomposition: 5 threads.
        assert synth.task_count == 5

    def test_grids(self):
        for rows, cols in [(1, 1), (2, 2), (3, 4), (5, 3)]:
            assert_realises(grid_diagram(rows, cols).graph)

    def test_chain_needs_no_forks(self):
        from repro.lattice.generators import chain

        synth = assert_realises(chain(6))
        assert synth.task_count == 1


class TestRandomLattices:
    @settings(max_examples=60, deadline=None)
    @given(graph=staircase_lattices())
    def test_staircases(self, graph):
        assert_realises(graph)

    @settings(max_examples=60, deadline=None)
    @given(graph=sp_digraphs())
    def test_sp_graphs(self, graph):
        assert_realises(graph)

    @settings(max_examples=40, deadline=None)
    @given(graph=completed_lattices())
    def test_macneille_completed_lattices(self, graph):
        assert_realises(graph)


class TestAnnotatedSynthesis:
    def test_online_detector_on_synthesized_figure2(self):
        accesses = {
            "A": [("l", AccessKind.READ)],
            "B": [("l", AccessKind.READ)],
            "D": [("l", AccessKind.WRITE)],
        }
        synth = synthesize_events(diagram_of(figure2_lattice()), accesses)
        det = Lattice2DDetector()
        replay_events(synth.events, observers=[det])
        assert len(det.races) == 1

    @settings(max_examples=40, deadline=None)
    @given(graph=staircase_lattices(), seed=st.integers(0, 2**32 - 1))
    def test_online_matches_offline_on_annotated_lattices(self, graph, seed):
        """End-to-end: annotate a random lattice, run the ONLINE
        detector on the synthesized execution and the OFFLINE detector
        on the graph; they must agree on whether races exist, and the
        vector-clock detector must concur."""
        rng = random.Random(seed)
        accesses = {}
        for v in graph.vertices():
            if rng.random() < 0.6:
                kind = (
                    AccessKind.WRITE
                    if rng.random() < 0.5
                    else AccessKind.READ
                )
                accesses[v] = [(rng.randrange(3), kind)]
        offline = detect_races_on_lattice(graph, accesses)
        synth = synthesize_events(diagram_of(graph), accesses)
        online = Lattice2DDetector()
        vc = VectorClockDetector()
        replay_events(synth.events, observers=[online, vc])
        assert bool(online.races) == bool(offline) == bool(vc.races)


class TestErrors:
    def test_multi_sink_rejected(self):
        g = Digraph([(0, 1), (0, 2)])
        with pytest.raises(GraphError, match="single-source"):
            synthesize_events(Diagram.from_poset(Poset(g)))

    def test_events_use_dense_ids(self):
        synth = synthesize_events(diagram_of(figure3_lattice()))
        from repro.events import ForkEvent

        forked = [e.child for e in synth.events if isinstance(e, ForkEvent)]
        assert forked == list(range(1, len(forked) + 1))
