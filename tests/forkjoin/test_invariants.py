"""Execution-wide invariants of serial fork-first scheduling.

These are the facts the paper's proofs lean on; we check them on every
snapshot of random executions:

* the running task is always the leftmost *live* task -- everything to
  its left in the line has halted (hence joins never block);
* forks insert the child immediately left of the forker;
* the line ends as the root alone;
* thread ids are dense in creation order.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forkjoin import run
from repro.viz.timeline import LineTracker
from repro.workloads.synthetic import SyntheticConfig, random_program


class _InvariantChecker(LineTracker):
    """Extends the line tracker with halted bookkeeping + assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.halted: Set[int] = set()
        self.started: Set[int] = {0}
        self.max_tid = 0

    def _snap(self, desc: str, active: int) -> None:
        super()._snap(desc, active)
        self.started.add(active)
        _, line, _ = self.snapshots[-1]
        # Everything left of the active task has halted -- except a
        # freshly forked child that has not taken a transition yet
        # (it runs next, fork-first).
        idx = line.index(active) if active in line else len(line)
        for t in line[:idx]:
            assert t in self.halted or t not in self.started, (
                f"live started task {t} left of active {active}: {line}"
            )

    def on_fork(self, parent: int, child: int) -> None:
        assert child == self.max_tid + 1, "ids not dense"
        self.max_tid = child
        super().on_fork(parent, child)
        _, line, _ = self.snapshots[-1]
        assert line[line.index(parent) - 1] == child

    def on_halt(self, task: int) -> None:
        self.halted.add(task)
        super().on_halt(task)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_line_invariants_on_random_programs(seed):
    cfg = SyntheticConfig(seed=seed, max_tasks=16, ops_per_task=5)
    checker = _InvariantChecker()
    run(random_program(cfg), observers=[checker])
    assert checker.snapshots[-1][1] == [0]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_line_invariants_on_pipelines(seed):
    from repro.forkjoin.pipeline import run_pipeline
    from repro.workloads.pipelines import clean_pipeline

    items, stages = clean_pipeline(1 + seed % 5, 1 + seed % 4)
    checker = _InvariantChecker()
    run_pipeline(items, stages, observers=[checker])
    assert checker.snapshots[-1][1] == [0]


def test_line_invariants_on_cilk_and_x10():
    from repro.workloads.spworkloads import divide_and_conquer, map_reduce

    for body in (divide_and_conquer(3), map_reduce(5)):
        checker = _InvariantChecker()
        run(body, observers=[checker])
        assert checker.snapshots[-1][1] == [0]
