"""Tests for the serial fork-first interpreter."""

from __future__ import annotations

import pytest

from repro.detectors.base import EventTracer
from repro.errors import ProgramError, StructureError
from repro.events import (
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.forkjoin import fork, join, join_left, read, run, step, write
from repro.forkjoin.program import annotate


def empty(self):
    return
    yield  # pragma: no cover - makes this a generator function


class TestBasicExecution:
    def test_root_only(self):
        ex = run(empty, record_events=True)
        assert ex.task_count == 1
        assert ex.events == [HaltEvent(0)]

    def test_result_propagates(self):
        def body(self):
            yield step()
            return 42

        assert run(body).result == 42

    def test_fork_first_event_order(self):
        """The child's entire execution precedes the parent's next op."""
        def child(self):
            yield write("c")

        def main(self):
            c = yield fork(child)
            yield write("m")
            yield join(c)

        ex = run(main, record_events=True)
        assert ex.events == [
            ForkEvent(0, 1),
            WriteEvent(1, "c"),
            HaltEvent(1),
            WriteEvent(0, "m"),
            JoinEvent(0, 1),
            HaltEvent(0),
        ]

    def test_nested_fork_first(self):
        order = []

        def leaf(self, tag):
            order.append(tag)
            yield step()

        def mid(self):
            yield fork(leaf, "grandchild")
            order.append("mid")
            yield step()
            yield join_left()

        def main(self):
            yield fork(mid)
            order.append("main")
            yield step()
            yield join_left()

        run(main)
        assert order == ["grandchild", "mid", "main"]

    def test_handles_carry_names_and_tids(self):
        def child(self):
            yield step()

        def main(self):
            c = yield fork(child)
            assert c.tid == 1
            assert c.name == "child"
            yield join(c)

        ex = run(main)
        assert ex.task_count == 2

    def test_deep_fork_chain_does_not_recurse(self):
        """5000-deep fork chains must not hit the recursion limit."""
        def nest(self, depth):
            if depth:
                yield fork(nest, depth - 1)
                yield join_left()

        ex = run(nest, 5000)
        assert ex.task_count == 5001

    def test_op_count(self):
        def main(self):
            yield step()
            yield read("x")

        ex = run(main)
        assert ex.op_count == 3  # step, read, halt


class TestJoins:
    def test_join_left_returns_handle(self):
        def child(self):
            yield step()

        def main(self):
            c = yield fork(child)
            h = yield join_left()
            assert h.tid == c.tid and h.name == "child"

        run(main)

    def test_join_wrong_task_raises(self):
        def a(self):
            yield step()

        def main(self):
            ha = yield fork(a)
            hb = yield fork(a)
            yield join(ha)  # hb is the left neighbour, not ha

        with pytest.raises(StructureError, match="immediate left"):
            run(main)

    def test_join_left_with_no_neighbour_raises(self):
        def main(self):
            yield join_left()

        with pytest.raises(StructureError, match="no left neighbour"):
            run(main)

    def test_join_ancestor_raises(self):
        def child(self, parent_handle):
            yield join(parent_handle)

        def main(self):
            yield fork(child, self)

        with pytest.raises(StructureError):
            run(main)

    def test_unjoined_tasks_detected(self):
        def child(self):
            yield step()

        def main(self):
            yield fork(child)  # never joined

        with pytest.raises(StructureError, match="unjoined"):
            run(main)

    def test_unjoined_tasks_allowed_when_disabled(self):
        def child(self):
            yield step()

        def main(self):
            yield fork(child)

        ex = run(main, require_all_joined=False)
        assert ex.task_count == 2


class TestProgramErrors:
    def test_non_generator_body_rejected(self):
        def not_a_generator(self):
            return 3

        with pytest.raises(ProgramError, match="generator"):
            run(not_a_generator)

    def test_non_generator_child_rejected(self):
        def bad_child(self):
            return 3

        def main(self):
            yield fork(bad_child)

        with pytest.raises(ProgramError, match="generator"):
            run(main)

    def test_garbage_effect_rejected(self):
        def main(self):
            yield "what is this"

        with pytest.raises(ProgramError, match="not an effect"):
            run(main)

    def test_exceptions_propagate(self):
        def main(self):
            yield step()
            raise ValueError("user bug")

        with pytest.raises(ValueError, match="user bug"):
            run(main)


class TestObservers:
    def test_tracer_sees_every_event(self):
        def child(self):
            yield read("x")

        def main(self):
            c = yield fork(child)
            yield write("x")
            yield join(c)

        tracer = EventTracer()
        run(main, observers=[tracer])
        assert tracer.trace == [
            "root 0",
            "fork 0->1",
            "read 1 'x'",
            "halt 1",
            "write 0 'x'",
            "join 0<-1",
            "halt 0",
        ]

    def test_annotations_reach_observers_only(self):
        def main(self):
            yield annotate("marker", 123)
            yield step()

        tracer = EventTracer()
        ex = run(main, observers=[tracer], record_events=True)
        assert "@marker 0 123" in tracer.trace
        # Annotations are not operations: not counted, not recorded.
        assert ex.op_count == 2  # step + halt
        assert all("marker" not in repr(e) for e in ex.events)

    def test_events_not_recorded_by_default(self):
        ex = run(empty)
        assert ex.events is None


class TestOpBudget:
    def test_max_ops_guard(self):
        from repro.forkjoin.program import step as step_eff

        def runaway(self):
            while True:
                yield step_eff()

        with pytest.raises(ProgramError, match="budget"):
            run(runaway, max_ops=100)

    def test_max_ops_allows_terminating_programs(self):
        def fine(self):
            for _ in range(5):
                yield step()

        ex = run(fine, max_ops=100)
        assert ex.op_count == 6
