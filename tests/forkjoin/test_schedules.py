"""Tests for alternative schedules and schedule (in)dependence.

The point being demonstrated (§2.3 of the paper): happens-before
detectors answer identically along *any* valid schedule, while the 2D
detector's algorithm is tied to the serial fork-first order -- the
price of Θ(1) space.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import FastTrackDetector, VectorClockDetector
from repro.events import ForkEvent, HaltEvent, JoinEvent
from repro.forkjoin import run
from repro.forkjoin.schedules import is_serial_fork_first, random_schedule
from repro.workloads.synthetic import SyntheticConfig, random_program


def record(seed, max_tasks=12):
    cfg = SyntheticConfig(seed=seed, max_tasks=max_tasks, ops_per_task=5)
    ex = run(random_program(cfg), record_events=True)
    return ex.events


def drive_hb(detector_cls, events):
    """Drive a happens-before detector directly (no line validation --
    interleaved schedules are not line-disciplined executions)."""
    det = detector_cls()
    det.on_root(0)
    for ev in events:
        if isinstance(ev, ForkEvent):
            det.on_fork(ev.parent, ev.child)
        elif isinstance(ev, JoinEvent):
            det.on_join(ev.joiner, ev.joined)
        elif isinstance(ev, HaltEvent):
            det.on_halt(ev.task)
        elif hasattr(ev, "loc"):
            if type(ev).__name__ == "ReadEvent":
                det.on_read(ev.task, ev.loc)
            else:
                det.on_write(ev.task, ev.loc)
        else:
            det.on_step(ev.task)
    return det


class TestRandomSchedule:
    def test_constraints_preserved(self):
        events = record(3)
        rng = random.Random(0)
        shuffled = random_schedule(events, rng)
        assert sorted(map(repr, shuffled)) == sorted(map(repr, events))
        # per-task order
        def per_task(evts):
            out = {}
            for ev in evts:
                t = (ev.joiner if isinstance(ev, JoinEvent)
                     else ev.parent if isinstance(ev, ForkEvent)
                     else ev.task)
                out.setdefault(t, []).append(repr(ev))
            return out

        assert per_task(shuffled) == per_task(events)
        # fork before child's first event
        seen_fork = set()
        for ev in shuffled:
            if isinstance(ev, ForkEvent):
                seen_fork.add(ev.child)
            else:
                t = ev.joiner if isinstance(ev, JoinEvent) else ev.task
                assert t == 0 or t in seen_fork

    def test_original_stream_is_serial_fork_first(self):
        assert is_serial_fork_first(record(5))

    def test_shuffles_usually_are_not_serial(self):
        """With enough tasks, a random interleaving almost never remains
        fork-first -- the orders the paper's algorithm cannot consume."""
        events = record(7, max_tasks=14)
        rng = random.Random(1)
        hits = sum(
            is_serial_fork_first(random_schedule(events, rng))
            for _ in range(20)
        )
        assert hits < 20  # at least one genuine interleaving


class TestScheduleIndependence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), shuffle_seed=st.integers(0, 999))
    def test_vector_clocks_schedule_independent(self, seed, shuffle_seed):
        """The same races (as location sets) along every schedule."""
        events = record(seed)
        serial = drive_hb(VectorClockDetector, events)
        shuffled_events = random_schedule(
            events, random.Random(shuffle_seed)
        )
        shuffled = drive_hb(VectorClockDetector, shuffled_events)
        assert bool(serial.races) == bool(shuffled.races)
        assert {r.loc for r in serial.races} == {
            r.loc for r in shuffled.races
        }

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_fasttrack_verdict_schedule_independent(self, seed):
        events = record(seed)
        serial = drive_hb(FastTrackDetector, events)
        shuffled = drive_hb(
            FastTrackDetector, random_schedule(events, random.Random(9))
        )
        assert bool(serial.races) == bool(shuffled.races)
