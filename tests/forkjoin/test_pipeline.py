"""Tests for the linear pipeline construction (Section 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.forkjoin import build_task_graph, read, run, write
from repro.forkjoin.pipeline import PipelineSpec, pipeline_body, run_pipeline
from repro.lattice.generators import grid_digraph
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional


def tag_stage(i, log):
    def stage(item, j):
        log.append((i, j))
        yield write(("cell", i, j))

    stage.__name__ = f"stage{i}"
    return stage


class TestShape:
    def test_task_count(self):
        ex = run_pipeline(range(4), [tag_stage(i, []) for i in range(3)])
        assert ex.task_count == 4 * 3 + 1

    def test_execution_order_is_item_major(self):
        """Serial fork-first order processes item j completely before
        item j+1 -- the non-separating traversal of the grid."""
        log = []
        stages = [tag_stage(i, log) for i in range(3)]
        run_pipeline(range(3), stages)
        assert log == [
            (0, 0), (1, 0), (2, 0),
            (0, 1), (1, 1), (2, 1),
            (0, 2), (1, 2), (2, 2),
        ]

    def test_empty_stage_list_rejected(self):
        with pytest.raises(WorkloadError):
            PipelineSpec((), ())

    def test_single_stage_single_item(self):
        ex = run_pipeline([0], [tag_stage(0, [])])
        assert ex.task_count == 2


class TestTaskGraphIsGrid:
    @pytest.mark.parametrize("items,stages", [(2, 2), (3, 2), (2, 4), (4, 3)])
    def test_cell_order_matches_grid_order(self, items, stages):
        """Cell (i1, j1) happens-before (i2, j2) in the pipeline's task
        graph exactly when it does in the items x stages grid."""
        log = []
        ex = run_pipeline(
            range(items),
            [tag_stage(i, log) for i in range(stages)],
            record_events=True,
        )
        tg = build_task_graph(ex.events)
        cell_vertex = {}
        for v, op in tg.ops.items():
            if op.kind == "write" and op.loc and op.loc[0] == "cell":
                _, i, j = op.loc
                cell_vertex[(i, j)] = v
        grid = Poset(grid_digraph(stages, items))
        for (i1, j1), v1 in cell_vertex.items():
            for (i2, j2), v2 in cell_vertex.items():
                assert tg.poset.leq(v1, v2) == grid.leq((i1, j1), (i2, j2)), (
                    (i1, j1), (i2, j2)
                )

    def test_pipeline_graph_is_2d_lattice(self):
        ex = run_pipeline(
            range(3), [tag_stage(i, []) for i in range(3)],
            record_events=True,
        )
        tg = build_task_graph(ex.events)
        assert tg.poset.is_lattice()
        assert is_two_dimensional(tg.poset)


class TestRaces:
    def test_clean_pipeline_has_no_races(self):
        from repro.detectors import Lattice2DDetector
        from repro.workloads.pipelines import clean_pipeline

        items, stages = clean_pipeline(5, 4)
        det = Lattice2DDetector()
        run_pipeline(items, stages, observers=[det])
        assert det.races == []

    def test_racy_pipeline_flagged(self):
        from repro.detectors import Lattice2DDetector
        from repro.workloads.pipelines import racy_pipeline

        items, stages = racy_pipeline(4, 3)
        det = Lattice2DDetector()
        run_pipeline(items, stages, observers=[det])
        assert det.races

    def test_read_shared_pipeline_race_free_but_fat_for_vc(self):
        from repro.detectors import Lattice2DDetector, VectorClockDetector
        from repro.workloads.pipelines import read_shared_pipeline

        items, stages = read_shared_pipeline(5, 3)
        d2 = Lattice2DDetector()
        vc = VectorClockDetector()
        run_pipeline(items, stages, observers=[d2, vc])
        assert d2.races == [] and vc.races == []
        # The space separation the paper is about:
        assert d2.shadow_peak_per_location() <= 2
        assert vc.shadow_peak_per_location() >= 5

    def test_stage_serialisation_orders_same_stage_accesses(self):
        """Stage i of item j is ordered before stage i of item j+1, so a
        per-stage accumulator is safe."""
        from repro.detectors import Lattice2DDetector

        def accum(item, j):
            yield read(("acc",))
            yield write(("acc",))

        det = Lattice2DDetector()
        run_pipeline(range(6), [accum], observers=[det])
        assert det.races == []


class TestParallelStages:
    """Cilk-P parallel stages: no cross-item serialisation at the
    flagged stages; the happened-before relation must equal

        (i, j) <= (i', j')  iff  i <= i' and (j == j' or
        (j < j' and some serial stage s has i <= s <= i')).
    """

    @staticmethod
    def _relation(n_items, n_stages, parallel):
        from repro.forkjoin import build_task_graph
        from repro.forkjoin.program import write

        def stage_fn(i):
            def stage(item, j):
                yield write(("cell", i, j))

            stage.__name__ = f"s{i}"
            return stage

        ex = run_pipeline(
            range(n_items),
            [stage_fn(i) for i in range(n_stages)],
            parallel=parallel,
            record_events=True,
        )
        tg = build_task_graph(ex.events)
        cell = {
            op.loc[1:]: v for v, op in tg.ops.items() if op.kind == "write"
        }
        return tg, cell, ex

    @pytest.mark.parametrize(
        "parallel",
        [[], [1], [0], [2], [0, 1], [1, 2], [0, 2], [0, 1, 2]],
    )
    def test_relation_exact(self, parallel):
        n_items, n_stages = 4, 3
        tg, cell, _ = self._relation(n_items, n_stages, parallel)
        serial = [s for s in range(n_stages) if s not in set(parallel)]
        for (i1, j1), v1 in cell.items():
            for (i2, j2), v2 in cell.items():
                expected = (i1 <= i2) and (
                    j1 == j2
                    or (j1 < j2 and any(i1 <= s <= i2 for s in serial))
                )
                assert tg.poset.leq(v1, v2) == expected, (
                    parallel, (i1, j1), (i2, j2)
                )

    def test_parallel_stage_accumulator_races(self):
        """A shared accumulator at a *parallel* stage races across items
        (the same accumulator at a serial stage is safe -- tested in
        TestRaces above)."""
        from repro.detectors import Lattice2DDetector

        def accum(item, j):
            yield read(("acc",))
            yield write(("acc",))

        det = Lattice2DDetector()
        run_pipeline(range(5), [accum], parallel=[0], observers=[det])
        assert det.races

    def test_all_parallel_graph_is_still_2d_lattice(self):
        tg, _, ex = self._relation(3, 3, [0, 1, 2])
        assert tg.poset.is_lattice()
        assert is_two_dimensional(tg.poset)

    def test_out_of_range_parallel_rejected(self):
        with pytest.raises(WorkloadError, match="out of range"):
            PipelineSpec((1,), (lambda item, j: iter(()),), frozenset({5}))

    def test_joins_before_counts_parallel_runs(self):
        spec = PipelineSpec(
            (0,), tuple(lambda item, j: iter(()) for _ in range(5)),
            frozenset({1, 2, 4}),
        )
        assert spec.joins_before(0) == 1
        assert spec.joins_before(3) == 3  # absorbs stages 2 and 1
