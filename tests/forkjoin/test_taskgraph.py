"""Tests for task-graph reconstruction and Theorem 6.

Theorem 6: programs following the Figure 9 rules generate task graphs
with a two-dimensional lattice structure.  We reconstruct the
operation-level graph of executions (including random ones) and check
exactly that: single source, single sink, a lattice, and dimension <= 2.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forkjoin import (
    build_task_graph,
    fork,
    join,
    join_left,
    read,
    run,
    step,
    write,
)
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_two_dimensional
from repro.lattice.series_parallel import is_series_parallel
from repro.workloads.synthetic import SyntheticConfig, random_program


def figure2_body():
    def task_a(self):
        yield read("l", label="A")

    def task_c(self, a):
        yield join(a)
        yield step(label="C")

    def main(self):
        a = yield fork(task_a)
        yield read("l", label="B")
        c = yield fork(task_c, a)
        yield write("l", label="D")
        yield join(c)

    return main


def assert_is_2d_lattice(tg):
    assert len(tg.graph.sources()) == 1
    assert len(tg.graph.sinks()) == 1
    poset = tg.poset
    assert poset.is_lattice()
    assert is_two_dimensional(poset)


class TestFigure2:
    def test_graph_shape(self):
        ex = run(figure2_body(), record_events=True)
        tg = build_task_graph(ex.events)
        assert_is_2d_lattice(tg)
        assert not is_series_parallel(tg.graph.transitive_reduction())

    def test_orderings_match_paper(self):
        """A || D (the race), B before D, A before C."""
        ex = run(figure2_body(), record_events=True)
        tg = build_task_graph(ex.events)
        by_label = {op.label: i for i, op in tg.ops.items() if op.label}
        A, B, C, D = (by_label[k] for k in "ABCD")
        assert not tg.poset.comparable(A, D)
        assert tg.poset.lt(B, D)
        assert tg.poset.lt(A, C)
        assert tg.poset.lt(B, C)

    def test_threads_group_operations_by_task(self):
        ex = run(figure2_body(), record_events=True)
        tg = build_task_graph(ex.events)
        threads = tg.threads()
        assert len(threads) == 3
        assert sum(len(ops) for ops in threads.values()) == len(tg.ops)

    def test_accesses_in_order(self):
        ex = run(figure2_body(), record_events=True)
        tg = build_task_graph(ex.events)
        kinds = [k.value for (_, _, k) in tg.accesses()]
        assert kinds == ["read", "read", "write"]


class TestTheorem6:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_random_programs_yield_2d_lattices(self, seed):
        cfg = SyntheticConfig(seed=seed, max_tasks=10, ops_per_task=4)
        ex = run(random_program(cfg), record_events=True)
        tg = build_task_graph(ex.events)
        assert_is_2d_lattice(tg)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_no_leftovers_means_series_parallel(self, seed):
        """With leftover_probability = 0, every task joins its own
        children before halting -- the bracketed discipline (11), which
        must produce SP graphs."""
        cfg = SyntheticConfig(
            seed=seed, max_tasks=10, ops_per_task=4,
            leftover_probability=0.0,
        )
        ex = run(random_program(cfg), record_events=True)
        tg = build_task_graph(ex.events)
        assert is_series_parallel(tg.graph.transitive_reduction())

    def test_leftovers_can_produce_non_sp(self):
        """At least one seed must exhibit a non-SP (but 2D) task graph,
        or the generator would not cover the paper's added generality."""
        found_non_sp = False
        for seed in range(40):
            cfg = SyntheticConfig(
                seed=seed, max_tasks=12, ops_per_task=5,
                leftover_probability=0.8,
            )
            ex = run(random_program(cfg), record_events=True)
            tg = build_task_graph(ex.events)
            assert_is_2d_lattice(tg)
            if not is_series_parallel(tg.graph.transitive_reduction()):
                found_non_sp = True
                break
        assert found_non_sp


class TestReconstructionMechanics:
    def test_empty_child(self):
        def child(self):
            return
            yield

        def main(self):
            c = yield fork(child)
            yield join(c)

        ex = run(main, record_events=True)
        tg = build_task_graph(ex.events)
        assert_is_2d_lattice(tg)
        kinds = [tg.ops[i].kind for i in sorted(tg.ops)]
        assert kinds == ["fork", "halt", "join", "halt"]

    def test_ordered_helper(self):
        ex = run(figure2_body(), record_events=True)
        tg = build_task_graph(ex.events)
        first, *_, last = sorted(tg.ops)
        assert tg.ordered(first, last)
        assert not tg.ordered(last, first)
