"""Tests for the Cilk spawn-sync sugar (construction (11))."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forkjoin import build_task_graph, read, run, write
from repro.forkjoin.spawn_sync import CilkTask, cilk
from repro.lattice.series_parallel import is_series_parallel


@cilk
def noop(ctx):
    return
    yield  # pragma: no cover


class TestBasics:
    def test_spawn_and_sync(self):
        @cilk
        def main(ctx):
            a = yield from ctx.spawn(noop)
            b = yield from ctx.spawn(noop)
            assert ctx.outstanding == 2
            yield from ctx.sync()
            assert ctx.outstanding == 0
            assert a.tid == 1 and b.tid == 2

        ex = run(main)
        assert ex.task_count == 3

    def test_implicit_sync_at_end(self):
        """Cilk semantics: the trailing sync happens even if omitted."""
        @cilk
        def main(ctx):
            yield from ctx.spawn(noop)
            yield from ctx.spawn(noop)
            # no explicit sync

        ex = run(main)  # would raise StructureError about unjoined tasks
        assert ex.task_count == 3

    def test_return_value(self):
        @cilk
        def main(ctx):
            yield read("x")
            return "done"

        assert run(main).result == "done"

    def test_nested_spawns(self):
        @cilk
        def inner(ctx):
            yield from ctx.spawn(noop)
            yield from ctx.sync()

        @cilk
        def main(ctx):
            yield from ctx.spawn(inner)
            yield from ctx.spawn(inner)
            yield from ctx.sync()

        ex = run(main)
        assert ex.task_count == 5


class TestTaskGraphs:
    def test_figure1_program_is_sp(self):
        """spawn A; B; sync; spawn C; D; sync -- the Figure 1 program."""
        @cilk
        def a(ctx):
            yield read("r")

        @cilk
        def c(ctx):
            yield read("s")

        @cilk
        def main(ctx):
            yield from ctx.spawn(a)
            yield read("r")   # B
            yield from ctx.sync()
            yield from ctx.spawn(c)
            yield write("w")  # D
            yield from ctx.sync()

        ex = run(main, record_events=True)
        tg = build_task_graph(ex.events)
        assert is_series_parallel(tg.graph.transitive_reduction())

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        depth=st.integers(1, 3),
        fanout=st.integers(2, 3),
    )
    def test_divide_and_conquer_always_sp(self, seed, depth, fanout):
        from repro.workloads.spworkloads import divide_and_conquer

        ex = run(divide_and_conquer(depth, fanout), record_events=True)
        tg = build_task_graph(ex.events)
        assert is_series_parallel(tg.graph.transitive_reduction())

    def test_fib_shape(self):
        @cilk
        def fib(ctx, n):
            if n < 2:
                yield write(("fib", ctx.handle.tid))
                return
            yield from ctx.spawn(fib, n - 1)
            yield from ctx.spawn(fib, n - 2)
            yield from ctx.sync()
            yield read(("fib", ctx.handle.tid))

        ex = run(fib, 7, record_events=True)
        tg = build_task_graph(ex.events)
        assert is_series_parallel(tg.graph.transitive_reduction())
        # fib call tree: fib(7) makes 2*fib(7)-1 = 41 calls for fib>=1...
        # simply check the count matches the recursion.
        def calls(n):
            return 1 if n < 2 else 1 + calls(n - 1) + calls(n - 2)

        assert ex.task_count == calls(7)
