"""Exporters: exact JSON and Prometheus text output."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import to_json, to_prometheus, write_metrics
from repro.obs.phases import PhaseTracer
from repro.obs.registry import MetricsRegistry

pytestmark = pytest.mark.obs


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "events_total", "events ingested", labels={"engine": "batch"}
    ).inc(7)
    reg.gauge("depth", "current depth").set(2.5)
    h = reg.histogram("batch_seconds", "per-batch time", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestJson:
    def test_exact_document(self):
        doc = json.loads(to_json(_sample_registry()))
        assert doc == {
            "counters": {'events_total{engine="batch"}': 7},
            "gauges": {"depth": 2.5},
            "histograms": {
                "batch_seconds": {
                    "buckets": {"0.1": 1, "1.0": 2},
                    "sum": 5.55,
                    "count": 3,
                }
            },
        }

    def test_embeds_tracer_phases(self):
        tracer = PhaseTracer(enabled=True)
        with tracer.span("ingest"):
            pass
        doc = json.loads(to_json(MetricsRegistry(), tracer=tracer))
        assert doc["phases"]["ingest"]["calls"] == 1
        assert doc["phases"]["ingest"]["seconds"] >= 0


class TestPrometheus:
    def test_exact_exposition(self):
        text = to_prometheus(_sample_registry())
        assert text == (
            "# HELP batch_seconds per-batch time\n"
            "# TYPE batch_seconds histogram\n"
            'batch_seconds_bucket{le="0.1"} 1\n'
            'batch_seconds_bucket{le="1"} 2\n'
            'batch_seconds_bucket{le="+Inf"} 3\n'
            "batch_seconds_sum 5.55\n"
            "batch_seconds_count 3\n"
            "# HELP depth current depth\n"
            "# TYPE depth gauge\n"
            "depth 2.5\n"
            "# HELP events_total events ingested\n"
            "# TYPE events_total counter\n"
            'events_total{engine="batch"} 7\n'
        )

    def test_empty_registry_exports_nothing(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.counter("shadow-update.count", labels={"bad-key": "v"}).inc()
        text = to_prometheus(reg)
        assert "shadow_update_count" in text
        assert 'bad_key="v"' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"loc": 'say "hi"\\now'}).inc()
        text = to_prometheus(reg)
        assert 'loc="say \\"hi\\"\\\\now"' in text

    def test_integral_floats_render_as_integers(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3.0)
        assert "c 3\n" in to_prometheus(reg)


class TestWriteMetrics:
    def test_extension_selects_the_format(self, tmp_path):
        reg = _sample_registry()
        prom = tmp_path / "m.prom"
        txt = tmp_path / "m.txt"
        js = tmp_path / "m.json"
        assert write_metrics(str(prom), reg) == "prometheus"
        assert write_metrics(str(txt), reg) == "prometheus"
        assert write_metrics(str(js), reg) == "json"
        assert prom.read_text() == to_prometheus(reg)
        assert json.loads(js.read_text()) == json.loads(to_json(reg))

    def test_json_dump_carries_phases(self, tmp_path):
        tracer = PhaseTracer(enabled=True)
        with tracer.span("x"):
            pass
        path = tmp_path / "m.json"
        write_metrics(str(path), MetricsRegistry(), tracer=tracer)
        assert json.loads(path.read_text())["phases"]["x"]["calls"] == 1
