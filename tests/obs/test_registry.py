"""The metrics registry: instruments, identity model, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ProgramError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    set_registry,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("events_total")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increments(self):
        c = MetricsRegistry().counter("events_total")
        with pytest.raises(ProgramError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0

    def test_concurrent_increments_are_exact(self):
        c = MetricsRegistry().counter("hits")
        n_threads, per_thread = 8, 5_000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_pull_function_reads_live_state(self):
        state = {"n": 0}
        g = MetricsRegistry().gauge("live")
        g.set_function(lambda: state["n"])
        assert g.value == 0
        state["n"] = 99
        assert g.value == 99

    def test_set_clears_the_pull_function(self):
        g = MetricsRegistry().gauge("live")
        g.set_function(lambda: 7)
        g.set(3)
        assert g.value == 3


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        h = MetricsRegistry().histogram("latency", buckets=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 100.0):
            h.observe(v)
        # cumulative: <=1.0 sees two, <=10.0 sees three, +Inf all four
        assert h.cumulative_counts() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(106.4)

    def test_boundary_value_falls_in_its_upper_bucket(self):
        h = MetricsRegistry().histogram("latency", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.cumulative_counts() == [1, 1, 1]

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("latency")
        assert h.buckets == DEFAULT_BUCKETS

    def test_empty_or_duplicate_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ProgramError, match="at least one bucket"):
            reg.histogram("a", buckets=())
        with pytest.raises(ProgramError, match="duplicate"):
            reg.histogram("b", buckets=(1.0, 1.0))


class TestIdentity:
    def test_same_name_and_labels_is_the_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("n", labels={"k": "v"})
        b = reg.counter("n", labels={"k": "v"})
        assert a is b

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        a = reg.counter("n", labels={"shard": "0"})
        b = reg.counter("n", labels={"shard": "1"})
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("n", labels={"a": "1", "b": "2"})
        b = reg.counter("n", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ProgramError, match="already registered"):
            reg.gauge("n")
        # ... even for a fresh label set under the same family name
        with pytest.raises(ProgramError, match="already registered"):
            reg.histogram("n", labels={"x": "y"})


class TestSnapshot:
    def test_sections_and_series_names(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"engine": "batch"}).inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {'c_total{engine="batch"}': 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"] == {
            "h": {"buckets": {"1.0": 1}, "sum": 0.5, "count": 1}
        }

    def test_clear_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.clear()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        # a fresh instrument after clear() starts at zero again
        assert reg.counter("c").value == 0


class TestDisabledRegistry:
    def test_hands_out_shared_noops(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("c") is NULL_REGISTRY.counter("a")

    def test_noop_instrument_absorbs_everything(self):
        c = NULL_REGISTRY.counter("a")
        c.inc()
        c.inc(100)
        c.set(5)
        c.observe(1.0)
        c.set_function(lambda: 9)
        assert c.value == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestDefaultRegistry:
    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            assert set_registry(previous) is mine
        assert get_registry() is previous


class TestExportMerge:
    """The picklable wire format the parallel engine ships between
    worker and parent registries."""

    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", labels={"shard": "0"}).inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        reg.histogram("h", buckets=(1.0, 10.0)).observe(5.0)
        return reg

    def test_roundtrip_into_empty_registry(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.merge_state(src.export_state())
        assert dst.snapshot() == src.snapshot()

    def test_merge_adds_to_existing_series(self):
        src = self._populated()
        dst = self._populated()
        dst.merge_state(src.export_state())
        snap = dst.snapshot()
        assert snap["counters"]['c{shard="0"}'] == 6
        # Gauges add too: the wire format carries deltas from workers
        # whose series the parent never touches concurrently.
        assert snap["gauges"]["g"] == 14
        hist = snap["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(11.0)

    def test_state_is_plain_data(self):
        import json

        state = self._populated().export_state()
        assert json.loads(json.dumps(state)) == state

    def test_merge_into_disabled_registry_is_a_noop(self):
        state = self._populated().export_state()
        NULL_REGISTRY.merge_state(state)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_bucket_mismatch_rejected(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(2.0, 20.0)).observe(1.0)
        with pytest.raises(ProgramError):
            dst.merge_state(src.export_state())

    def test_unknown_kind_rejected(self):
        dst = MetricsRegistry()
        with pytest.raises(ProgramError):
            dst.merge_state([{"kind": "exotic", "name": "x", "help": "",
                              "labels": [], "value": 1}])
