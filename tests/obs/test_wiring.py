"""End-to-end wiring: known workload, exact counter values, both exports.

The workload is ``conflicting_pair_program("x")`` -- two tasks forked
off the root, an unordered write/write pair on one location -- whose
trace is exactly 6 events (root step, 2 forks, 2 writes, halt-free
tail) with 2 accesses and precisely one race.  Every number asserted
here is the arithmetic of that trace, so a wiring regression (counter
not bumped, gauge bound to the wrong attribute, export renaming a
series) fails loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.core.unionfind import IntUnionFind, UnionFind
from repro.engine.batch import BatchBuilder
from repro.engine.differential import replay_differential
from repro.engine.ingest import BatchEngine
from repro.forkjoin.interpreter import run
from repro.obs.bind import bind_detector
from repro.obs.export import to_json, to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.workloads.racegen import conflicting_pair_program

pytestmark = [pytest.mark.obs, pytest.mark.engine]


def _capture():
    builder = BatchBuilder()
    run(conflicting_pair_program("x"), observers=[builder])
    return builder.batch, builder.interner


@pytest.fixture()
def measured():
    """One known ingestion with engine + detector fully bound."""
    batch, interner = _capture()
    registry = MetricsRegistry()
    engine = BatchEngine(interner=interner, registry=registry)
    bind_detector(registry, engine.detector, {"detector": "2d"})
    engine.ingest(batch)
    return batch, registry


EXPECTED_COUNTERS = {
    'engine_batches_total{engine="batch"}': 1,
    'engine_dispatch_total{engine="batch",path="generic"}': 0,
    'engine_dispatch_total{engine="batch",path="kernel"}': 1,
    'engine_dispatch_total{engine="batch",path="memo"}': 0,
    'engine_dispatch_total{engine="batch",path="predict"}': 0,
    'engine_dispatch_total{engine="batch",path="vectorized"}': 0,
    'engine_events_total{engine="batch"}': 6,
    'engine_memo_hits_total{engine="batch"}': 0,
    'engine_memo_misses_total{engine="batch"}': 0,
    'engine_races_total{engine="batch"}': 1,
}

EXPECTED_GAUGES = {
    'detector_ops{detector="2d"}': 6,
    'detector_races{detector="2d"}': 1,
    'detector_shadow_entries{detector="2d"}': 1,
    'detector_shadow_locations{detector="2d"}': 1,
    'detector_shadow_peak_per_location{detector="2d"}': 1,
    # two tasks forked -> two union-find elements; the write/write
    # check is one find against each task's line position
    'detector_unionfind_elements{detector="2d"}': 2,
    'detector_unionfind_finds{detector="2d"}': 2,
    'detector_unionfind_hops{detector="2d"}': 0,
    'detector_unionfind_unions{detector="2d"}': 1,
}


class TestKnownWorkloadExactValues:
    def test_trace_shape(self, measured):
        batch, _ = measured
        assert len(batch) == 6
        assert batch.access_count() == 2

    def test_snapshot(self, measured):
        _, registry = measured
        snap = registry.snapshot()
        assert snap["counters"] == EXPECTED_COUNTERS
        assert snap["gauges"] == EXPECTED_GAUGES

    def test_json_export(self, measured):
        _, registry = measured
        doc = json.loads(to_json(registry))
        assert doc["counters"] == EXPECTED_COUNTERS
        assert doc["gauges"] == EXPECTED_GAUGES

    def test_prometheus_export(self, measured):
        _, registry = measured
        text = to_prometheus(registry)
        for series, value in {
            **EXPECTED_COUNTERS, **EXPECTED_GAUGES
        }.items():
            assert f"{series} {value}\n" in text
        assert "# TYPE engine_events_total counter\n" in text
        assert "# TYPE detector_unionfind_finds gauge\n" in text


class TestUnionFindBinding:
    def test_int_union_find_counters_through_the_registry(self):
        registry = MetricsRegistry()
        uf = IntUnionFind()
        uf.bind_metrics(registry, {"who": "t"})
        for _ in range(4):
            uf.make()
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(0, 2)
        finds_before = uf.find_count
        uf.find(3)
        gauges = registry.snapshot()["gauges"]
        assert gauges['unionfind_elements{who="t"}'] == 4
        assert gauges['unionfind_unions{who="t"}'] == 3
        assert gauges['unionfind_finds{who="t"}'] == finds_before + 1
        # pull gauges read live state: later ops show up with no rebind
        uf.find(3)
        assert (
            registry.snapshot()["gauges"]['unionfind_finds{who="t"}']
            == finds_before + 2
        )

    def test_hashable_wrapper_delegates(self):
        registry = MetricsRegistry()
        uf = UnionFind()
        uf.bind_metrics(registry, prefix="uf")
        uf.add("a")
        uf.add("b")
        uf.find("a")
        uf.find("b")
        uf.union("a", "b")
        gauges = registry.snapshot()["gauges"]
        assert gauges["uf_elements"] == 2
        assert gauges["uf_unions"] == 1


class TestDifferentialCounters:
    def test_lockstep_replay_reports_through_the_registry(self):
        from repro.obs.registry import set_registry

        batch, interner = _capture()
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            report = replay_differential(
                batch, interner, ("lattice2d", "fasttrack")
            )
        finally:
            set_registry(previous)
        assert report.agreed
        snap = registry.snapshot()
        assert snap["counters"]["differential_replays_total"] == 1
        assert snap["counters"]["differential_events_total"] == 6
        assert snap["counters"]["differential_accesses_total"] == 2
        assert snap["counters"]["differential_divergences_total"] == 0
        assert snap["gauges"]['differential_races{detector="lattice2d"}'] == 1
        assert snap["gauges"]['differential_races{detector="fasttrack"}'] == 1


class TestHarnessReadsFromRegistry:
    def test_measure_stats_equal_registry_gauges(self):
        from repro.bench.harness import DETECTOR_FACTORIES, measure

        registry = MetricsRegistry()
        stats = measure(
            conflicting_pair_program("x"),
            detector=DETECTOR_FACTORIES["lattice2d"](),
            registry=registry,
        )
        gauges = registry.snapshot()["gauges"]
        labels = '{detector="lattice2d"}'
        assert stats.races == gauges[f"detector_races{labels}"] == 1
        assert stats.tasks == gauges[f"run_tasks{labels}"]
        assert stats.ops == gauges[f"run_ops{labels}"]
        assert stats.shadow_total == gauges[f"detector_shadow_entries{labels}"]
        assert stats.wall_seconds == gauges[f"run_wall_seconds{labels}"]
