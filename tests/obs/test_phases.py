"""Phase tracing: span nesting, aggregates, registry mirroring."""

from __future__ import annotations

import threading

import pytest

from repro.obs.phases import (
    PhaseTracer,
    _NULL_SPAN,
    get_tracer,
    set_tracer,
    traced,
)
from repro.obs.registry import MetricsRegistry

pytestmark = pytest.mark.obs


class TestSpans:
    def test_nested_spans_record_full_paths(self):
        tracer = PhaseTracer(enabled=True)
        with tracer.span("ingest"):
            with tracer.span("dispatch"):
                pass
            with tracer.span("shadow-update"):
                pass
        paths = [s.path for s in tracer.spans]
        # inner spans close first
        assert paths == [
            "ingest/dispatch", "ingest/shadow-update", "ingest",
        ]
        assert [s.depth for s in tracer.spans] == [1, 1, 0]
        assert all(s.seconds >= 0 for s in tracer.spans)

    def test_totals_aggregate_calls_and_seconds(self):
        tracer = PhaseTracer(enabled=True)
        for _ in range(3):
            with tracer.span("ingest"):
                pass
        totals = tracer.totals()
        assert totals["ingest"]["calls"] == 3
        assert totals["ingest"]["seconds"] >= 0

    def test_disabled_tracer_returns_the_shared_null_span(self):
        tracer = PhaseTracer()
        assert tracer.span("anything") is _NULL_SPAN
        with tracer.span("anything"):
            pass
        assert tracer.spans == []
        assert tracer.totals() == {}

    def test_max_spans_is_a_ring(self):
        tracer = PhaseTracer(enabled=True, max_spans=5)
        for i in range(8):
            with tracer.span(f"p{i}"):
                pass
        assert len(tracer.spans) == 5
        assert tracer.spans[0].name == "p3"  # oldest three dropped
        assert tracer.totals()["p0"]["calls"] == 1  # aggregates keep all

    def test_clear(self):
        tracer = PhaseTracer(enabled=True)
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.totals() == {}

    def test_threads_get_independent_stacks(self):
        tracer = PhaseTracer(enabled=True)
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(name):
                barrier.wait()  # both spans open simultaneously

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # neither span nested under the other
        assert sorted(s.path for s in tracer.spans) == ["t0", "t1"]
        assert all(s.depth == 0 for s in tracer.spans)


class TestRegistryMirroring:
    def test_finished_spans_bump_phase_counters(self):
        registry = MetricsRegistry()
        tracer = PhaseTracer(enabled=True, registry=registry)
        with tracer.span("ingest"):
            with tracer.span("dispatch"):
                pass
        counters = registry.snapshot()["counters"]
        assert counters['phase_calls_total{phase="ingest"}'] == 1
        assert counters['phase_calls_total{phase="ingest/dispatch"}'] == 1
        assert counters['phase_seconds_total{phase="ingest"}'] >= (
            counters['phase_seconds_total{phase="ingest/dispatch"}']
        )


class TestTracedDecorator:
    def test_times_calls_when_enabled(self):
        tracer = PhaseTracer(enabled=True)

        @traced("work", tracer=tracer)
        def work(x):
            return x * 2

        assert work(21) == 42
        assert [s.path for s in tracer.spans] == ["work"]

    def test_no_spans_when_disabled(self):
        tracer = PhaseTracer()

        @traced("work", tracer=tracer)
        def work():
            return 1

        assert work() == 1
        assert tracer.spans == []

    def test_late_binding_honours_set_tracer(self):
        @traced("late")
        def work():
            return "ok"

        mine = PhaseTracer(enabled=True)
        previous = set_tracer(mine)
        try:
            assert work() == "ok"
        finally:
            set_tracer(previous)
        assert [s.path for s in mine.spans] == ["late"]
        assert get_tracer() is previous
