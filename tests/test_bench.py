"""Tests for the benchmark harness, metrics and tables."""

from __future__ import annotations

import pytest

from repro.bench.harness import DETECTOR_FACTORIES, compare_detectors, measure
from repro.bench.metrics import DetectorStats
from repro.bench.tables import format_table, print_table
from repro.detectors import Lattice2DDetector
from repro.forkjoin import fork, join, read, run, write


def program(self):
    c = yield fork(child)
    yield read("x")
    yield join(c)


def child(self):
    yield write("x")


class TestMeasure:
    def test_baseline_run(self):
        stats = measure(program)
        assert stats.detector == "none"
        assert stats.tasks == 2
        assert stats.races == 0
        assert stats.wall_seconds > 0
        assert stats.overhead == 1.0

    def test_detector_run(self):
        stats = measure(program, detector=Lattice2DDetector())
        assert stats.detector == "lattice2d"
        assert stats.races == 1
        assert stats.locations == 1
        assert stats.shadow_peak_per_loc <= 2

    def test_seconds_per_op(self):
        stats = measure(program, detector=Lattice2DDetector())
        assert stats.seconds_per_op == stats.wall_seconds / stats.ops

    def test_overhead_none_without_baseline(self):
        stats = measure(program, detector=Lattice2DDetector())
        assert stats.overhead is None


class TestCompare:
    def test_default_trio_plus_baseline(self):
        rows = compare_detectors(program)
        names = [s.detector for s in rows]
        assert names == ["none", "lattice2d", "vectorclock", "fasttrack"]
        assert all(s.races == 1 for s in rows[1:])
        assert all(s.overhead is not None for s in rows[1:])

    def test_custom_detector_list(self):
        rows = compare_detectors(
            program, detectors=["naive"], include_baseline=False
        )
        assert [s.detector for s in rows] == ["naive"]

    def test_registry_complete(self):
        assert set(DETECTOR_FACTORIES) == {
            "lattice2d", "vectorclock", "vectorclock-dense", "fasttrack",
            "spbags", "espbags", "offsetspan", "shb", "naive", "depa",
        }


class TestTables:
    def test_format_alignment_and_columns(self):
        rows = [
            {"detector": "lattice2d", "races": 1},
            {"detector": "vc", "races": 10, "extra": "x"},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "detector" in lines[1] and "extra" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="nothing")

    def test_print_table(self, capsys):
        print_table([{"a": 1}], title="hello")
        out = capsys.readouterr().out
        assert "hello" in out and "a" in out

    def test_stats_row_shape(self):
        stats = measure(program, detector=Lattice2DDetector())
        row = stats.row()
        assert row["detector"] == "lattice2d"
        assert "us/op" in row and "shadow/loc(peak)" in row


class TestReport:
    def test_build_report_tables(self):
        from repro.bench.report import build_report

        text = build_report()
        assert "Theorem 5" in text and "Theorem 3" in text
        assert "| tasks |" in text
        assert "lattice2d" in text

    def test_report_to_file(self, tmp_path, capsys):
        from repro.bench.report import main as report_main

        out = tmp_path / "report.md"
        assert report_main([str(out)]) == 0
        assert out.read_text().startswith("# Regenerated headline tables")

    def test_theorem5_table_is_deterministic(self):
        """The space columns of the regenerated Theorem 5 table are
        exact integers, reproducible on any machine."""
        from repro.bench.report import _theorem5_space

        rows = _theorem5_space()
        assert [r["tasks"] for r in rows] == [9, 65, 257, 1025]
        assert [r["lattice2d shadow/loc"] for r in rows] == [2, 2, 2, 2]
        assert [r["vectorclock shadow/loc"] for r in rows] == [
            9, 65, 257, 1025,
        ]
