"""Tests for the command-line interface."""

from __future__ import annotations

import textwrap

import pytest

from repro.cli import build_parser, main

PROGRAM = textwrap.dedent(
    """
    from repro.forkjoin import fork, join, read, write

    def child(self):
        yield write("x")

    def main(self):
        c = yield fork(child)
        yield read("x")
        yield join(c)

    def clean(self):
        yield write("y")
        yield read("y")
    """
)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(PROGRAM)
    return str(path)


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 1  # a race was found
        out = capsys.readouterr().out
        assert "race on 'l'" in out

    def test_detectors_listing(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out.split()
        assert "lattice2d" in out and "fasttrack" in out

    def test_run_detects_race(self, program_file, capsys):
        assert main(["run", program_file]) == 1
        out = capsys.readouterr().out
        assert "1 race(s)" in out

    def test_run_clean_entry(self, program_file, capsys):
        assert main(["run", program_file, "--entry", "clean"]) == 0
        assert "0 race(s)" in capsys.readouterr().out

    def test_run_with_other_detector(self, program_file, capsys):
        assert main(
            ["run", program_file, "--detector", "vectorclock"]
        ) == 1
        assert "vectorclock" in capsys.readouterr().out

    def test_compare_table(self, program_file, capsys):
        assert main(["run", program_file, "--compare"]) == 1
        out = capsys.readouterr().out
        assert "lattice2d" in out and "fasttrack" in out and "none" in out

    def test_dot_export(self, program_file, tmp_path, capsys):
        dot = tmp_path / "out.dot"
        assert main(["run", program_file, "--dot", str(dot)]) == 1
        assert dot.read_text().startswith("digraph")

    def test_missing_entry_errors(self, program_file, capsys):
        assert main(["run", program_file, "--entry", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_errors(self, tmp_path):
        assert main(["run", str(tmp_path / "absent.py")]) == 2

    def test_parser_rejects_unknown_detector(self, program_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", program_file, "--detector", "magic"]
            )

    def test_record_then_replay(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["record", program_file, "-o", trace]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "2 tasks" in out
        assert main(["replay", trace]) == 1
        out = capsys.readouterr().out
        assert "1 race(s)" in out

    def test_replay_clean_under_other_detector(
        self, program_file, tmp_path, capsys
    ):
        trace = str(tmp_path / "clean.jsonl")
        main(["record", program_file, "--entry", "clean", "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--detector", "fasttrack"]) == 0
        assert "0 race(s)" in capsys.readouterr().out

    def test_record_compact_then_replay(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        assert main(["record", program_file, "--compact", "-o", trace]) == 0
        assert "compact" in capsys.readouterr().out
        assert main(["replay", trace]) == 1
        out = capsys.readouterr().out
        assert "batched" in out and "1 race(s)" in out and "'x'" in out

    def test_replay_compact_sharded(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--shards", "3"]) == 1
        assert "x3 shards" in capsys.readouterr().out

    def test_replay_compact_depa_backend(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--backend", "depa"]) == 1
        out = capsys.readouterr().out
        assert "depa backend" in out and "1 race(s)" in out and "'x'" in out
        assert main(["replay", trace, "--backend", "depa", "--shards", "2"]) == 1
        assert "x2 shards" in capsys.readouterr().out

    def test_replay_backend_misuse_errors(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(
            ["replay", trace, "--backend", "depa", "--detector", "fasttrack"]
        ) == 2
        assert "--backend" in capsys.readouterr().err
        assert main(["replay", trace, "--backend", "depa", "--jobs", "2"]) == 2
        assert "lattice2d" in capsys.readouterr().err

    def test_replay_predict(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--predict"]) == 1
        out = capsys.readouterr().out
        assert "shb predict" in out and "1 race(s)" in out and "'x'" in out
        assert main(["replay", trace, "--predict", "--shards", "2"]) == 1
        out = capsys.readouterr().out
        assert "shb predict" in out and "x2 shards" in out

    def test_replay_predict_jsonl(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        main(["record", program_file, "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--predict"]) == 1
        assert "1 race(s)" in capsys.readouterr().out

    def test_replay_predict_misuse_errors(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--predict", "--backend", "depa"]) == 2
        assert "--backend" in capsys.readouterr().err
        assert main(
            ["replay", trace, "--predict", "--detector", "fasttrack"]
        ) == 2
        assert "--detector" in capsys.readouterr().err
        assert main(["replay", trace, "--predict", "--jobs", "2"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_replay_compact_parallel(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(["replay", trace, "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert "x2 workers" in out and "1 race(s)" in out

    def test_replay_jobs_misuse_errors(self, program_file, tmp_path, capsys):
        compact = str(tmp_path / "run.rtrc")
        jsonl = str(tmp_path / "run.jsonl")
        main(["record", program_file, "--compact", "-o", compact])
        main(["record", program_file, "-o", jsonl])
        capsys.readouterr()
        assert main(["replay", compact, "--jobs", "2", "--shards", "2"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
        assert main(
            ["replay", compact, "--jobs", "2", "--detector", "fasttrack"]
        ) == 2
        assert "lattice2d" in capsys.readouterr().err
        assert main(["replay", jsonl, "--jobs", "2"]) == 2
        assert "compact" in capsys.readouterr().err

    def test_stats_jobs_merges_worker_counters(
        self, program_file, tmp_path, capsys
    ):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(["stats", trace, "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert "engine_worker_events_total" in out
        assert 'shard="1"' in out

    def test_diff_agrees_on_both_formats(self, program_file, tmp_path, capsys):
        compact = str(tmp_path / "run.rtrc")
        jsonl = str(tmp_path / "run.jsonl")
        main(["record", program_file, "--compact", "-o", compact])
        main(["record", program_file, "-o", jsonl])
        capsys.readouterr()
        for trace in (compact, jsonl):
            assert main(["diff", trace]) == 0
            assert "all detectors agree" in capsys.readouterr().out

    def test_diff_custom_detector_list(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "run.rtrc")
        main(["record", program_file, "--compact", "-o", trace])
        capsys.readouterr()
        assert main(
            ["diff", trace, "--detectors", "lattice2d,vectorclock"]
        ) == 0
        out = capsys.readouterr().out
        assert "lattice2d=1" in out and "vectorclock=1" in out

    def test_bench_engine_smoke(self, tmp_path, capsys):
        out_json = tmp_path / "rec.json"
        assert main(
            [
                "bench-engine",
                "--accesses", "600",
                "--fanout", "2",
                "--accesses-per-task", "30",
                "--repeats", "1",
                "--shards", "2",
                "--jobs", "2",
                "--json", str(out_json),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "batched" in out and "0 divergence(s)" in out
        import json

        record = json.loads(out_json.read_text())
        assert record["bench"] == "engine_batch"
        assert record["differential"]["divergences"] == 0
        assert record["differential"]["compressed_agrees"] is True
        # Tiny smoke workloads barely dedup; the >= 3x ratio bar lives
        # in benchmarks/bench_engine_batch.py on the real loops run.
        assert record["compression_ratio"] > 0
        assert "compressed" in record["events_per_sec"]

    def test_compress_decompress_round_trip(
        self, program_file, tmp_path, capsys
    ):
        """compress then decompress reproduces the raw RPR2TRC file
        byte-identically."""
        raw = tmp_path / "run.rtrc"
        z = tmp_path / "run.rpr2trz"
        back = tmp_path / "back.rtrc"
        main(["record", program_file, "--compact", "-o", str(raw)])
        capsys.readouterr()
        assert main(["compress", str(raw), "-o", str(z)]) == 0
        assert "compressed" in capsys.readouterr().out
        assert main(["decompress", str(z), "-o", str(back)]) == 0
        assert "decompressed" in capsys.readouterr().out
        assert back.read_bytes() == raw.read_bytes()

    def test_replay_compressed_trace(self, program_file, tmp_path, capsys):
        """replay accepts .rpr2trz directly and detects over the
        compressed form without decompressing."""
        raw = tmp_path / "run.rtrc"
        z = tmp_path / "run.rpr2trz"
        main(["record", program_file, "--compact", "-o", str(raw)])
        main(["compress", str(raw), "-o", str(z)])
        capsys.readouterr()
        assert main(["replay", str(z)]) == 1
        out = capsys.readouterr().out
        assert "memoized" in out and "1 race(s)" in out and "'x'" in out

    def test_stats_compressed_trace(self, program_file, tmp_path, capsys):
        raw = tmp_path / "run.rtrc"
        z = tmp_path / "run.rpr2trz"
        main(["record", program_file, "--compact", "-o", str(raw)])
        main(["compress", str(raw), "-o", str(z)])
        capsys.readouterr()
        assert main(["stats", str(z)]) == 1
        assert "engine_memo" in capsys.readouterr().out

    def test_compress_racegen_loops(self, tmp_path, capsys):
        """--racegen-loops generates the repetitive loop workload
        straight into a container that actually dedups."""
        z = tmp_path / "loops.rpr2trz"
        assert main(
            ["compress", "--racegen-loops", "2000", "-o", str(z)]
        ) == 0
        assert "racegen-loops" in capsys.readouterr().out
        assert main(["replay", str(z)]) == 1  # loop workload is racy
        assert "memoized" in capsys.readouterr().out

    def test_compress_needs_a_source(self, tmp_path, capsys):
        assert main(["compress", "-o", str(tmp_path / "z.rpr2trz")]) == 2
        assert "--racegen-loops" in capsys.readouterr().err

    def test_replay_bad_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format":"nope"}\n')
        assert main(["replay", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_timeline_command(self, program_file, capsys):
        assert main(["timeline", program_file]) == 0
        out = capsys.readouterr().out
        assert "fork 0->1" in out and "[0]" in out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out
