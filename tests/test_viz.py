"""Tests for the ASCII and DOT visualisations."""

from __future__ import annotations

from repro.events import Arc, Loop, StopArc
from repro.forkjoin import build_task_graph, fork, join, read, run, write
from repro.lattice.generators import figure3_diagram
from repro.viz.ascii import render_diagram, render_task_line, render_traversal
from repro.viz.dot import digraph_to_dot, task_graph_to_dot


def sample_task_graph():
    def child(self):
        yield write("x", label="w")

    def main(self):
        c = yield fork(child)
        yield read("x", label="r")
        yield join(c)

    ex = run(main, record_events=True)
    return build_task_graph(ex.events)


class TestAscii:
    def test_render_diagram_mentions_all_vertices(self):
        text = render_diagram(figure3_diagram())
        for v in range(1, 10):
            assert str(v) in text
        assert "1 -> 2, 4" in text

    def test_render_task_line(self):
        assert render_task_line([3, 1, 0], current=1) == "3 . [1] . 0"
        assert render_task_line([]) == "(empty line)"

    def test_render_traversal_marks_kinds(self):
        text = render_traversal(
            [Loop(1), Arc(1, 2, last=True), StopArc(2)], per_line=2
        )
        assert "(1,1)" in text
        assert "(1,2)!" in text
        assert "(2,\N{MULTIPLICATION SIGN})" in text
        assert len(text.splitlines()) == 2


class TestDot:
    def test_digraph_dot_structure(self):
        text = digraph_to_dot(figure3_diagram().graph, name="Fig3")
        assert text.startswith("digraph Fig3 {")
        assert '"1" -> "2";' in text
        assert text.rstrip().endswith("}")

    def test_task_graph_dot_clusters_and_labels(self):
        text = task_graph_to_dot(sample_task_graph())
        assert "cluster_task0" in text and "cluster_task1" in text
        assert "w" in text and "fork" in text
        assert "->" in text

    def test_dot_quotes_special_vertices(self):
        from repro.lattice.digraph import Digraph

        g = Digraph([(("a", 1), ("b", 2))])
        text = digraph_to_dot(g)
        assert '"(\'a\', 1)"' in text
