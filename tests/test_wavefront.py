"""Tests for the wavefront (stencil) workloads."""

from __future__ import annotations

import pytest

from repro.detectors import Lattice2DDetector, exact_races
from repro.errors import WorkloadError
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.wavefront import (
    blocked_wavefront,
    wavefront,
    wavefront_with_bug,
)


def monitored(workload):
    items, stages = workload
    det = Lattice2DDetector()
    ex = run_pipeline(items, stages, observers=[det], record_events=True)
    return det, ex


class TestCorrectKernel:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (4, 4), (6, 3), (3, 7)])
    def test_race_free(self, rows, cols):
        det, ex = monitored(wavefront(rows, cols))
        assert det.races == []
        assert exact_races(ex.events) == []

    def test_with_work_steps(self):
        det, ex = monitored(wavefront(3, 3, work=2))
        assert det.races == []
        assert ex.op_count > 9 * 3

    def test_bad_dimensions_rejected(self):
        with pytest.raises(WorkloadError):
            wavefront(0, 3)


class TestBuggyKernel:
    def test_anti_diagonal_races(self):
        det, ex = monitored(wavefront_with_bug(5, 5))
        assert det.races
        assert exact_races(ex.events)
        assert any("bad-read" in r.label for r in det.races)

    @pytest.mark.parametrize("offset", [(-1, 1), (1, -1), (-2, 3), (2, -1)])
    def test_any_incomparable_offset_races(self, offset):
        det, _ = monitored(wavefront_with_bug(6, 6, bad_offset=offset))
        assert det.races, offset

    @pytest.mark.parametrize("offset", [(-1, 0), (0, 1), (1, 1), (-1, -1)])
    def test_comparable_offsets_rejected_as_non_races(self, offset):
        with pytest.raises(WorkloadError, match="cannot race"):
            wavefront_with_bug(4, 4, bad_offset=offset)


class TestBlockedKernel:
    def test_race_free_and_fewer_tasks(self):
        det_fine, ex_fine = monitored(wavefront(8, 8))
        det_blk, ex_blk = monitored(blocked_wavefront(8, 8, 2, 2))
        assert det_fine.races == [] and det_blk.races == []
        assert ex_blk.task_count < ex_fine.task_count
        assert ex_blk.task_count == 4 * 4 + 1

    def test_block_size_must_divide(self):
        with pytest.raises(WorkloadError):
            blocked_wavefront(8, 8, 3, 2)

    def test_blocked_covers_all_cells(self):
        _, ex = monitored(blocked_wavefront(4, 4, 2, 2))
        from repro.forkjoin import build_task_graph

        tg = build_task_graph(ex.events)
        written = {
            op.loc
            for op in tg.ops.values()
            if op.kind == "write" and op.loc and op.loc[0] == "cell"
        }
        assert written == {("cell", i, j) for i in range(4) for j in range(4)}
