"""Surface tests: the documented public API exists and is importable."""

from __future__ import annotations

import pytest


def test_top_level_all_resolves():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.core.unionfind",
        "repro.core.traversal",
        "repro.core.suprema",
        "repro.core.delayed",
        "repro.core.detector",
        "repro.core.shadow",
        "repro.core.reports",
        "repro.lattice",
        "repro.lattice.digraph",
        "repro.lattice.poset",
        "repro.lattice.realizer",
        "repro.lattice.dominance",
        "repro.lattice.nonseparating",
        "repro.lattice.generators",
        "repro.lattice.series_parallel",
        "repro.forkjoin",
        "repro.forkjoin.line",
        "repro.forkjoin.program",
        "repro.forkjoin.interpreter",
        "repro.forkjoin.taskgraph",
        "repro.forkjoin.spawn_sync",
        "repro.forkjoin.async_finish",
        "repro.forkjoin.pipeline",
        "repro.forkjoin.futures",
        "repro.forkjoin.synthesis",
        "repro.forkjoin.replay",
        "repro.detectors",
        "repro.detectors.base",
        "repro.detectors.lattice2d",
        "repro.detectors.vector_clock",
        "repro.detectors.fasttrack",
        "repro.detectors.spbags",
        "repro.detectors.espbags",
        "repro.detectors.offsetspan",
        "repro.detectors.naive",
        "repro.detectors.oracle",
        "repro.detectors.offline2d",
        "repro.workloads",
        "repro.engine",
        "repro.engine.batch",
        "repro.engine.ingest",
        "repro.engine.tracefile",
        "repro.engine.differential",
        "repro.engine.benchlib",
        "repro.engine.parallel",
        "repro.engine.snapshot",
        "repro.engine.faults",
        "repro.serve",
        "repro.serve.protocol",
        "repro.serve.server",
        "repro.serve.client",
        "repro.obs",
        "repro.obs.registry",
        "repro.obs.phases",
        "repro.obs.export",
        "repro.obs.bind",
        "repro.bench",
        "repro.viz",
        "repro.viz.timeline",
        "repro.trace",
        "repro.cli",
        "repro.errors",
        "repro.events",
    ],
)
def test_module_imports_and_has_docstring(module):
    import importlib

    mod = importlib.import_module(module)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module} lacks a docstring"


def test_subpackage_all_resolve():
    import importlib

    for module in ("repro.detectors", "repro.lattice", "repro.forkjoin",
                   "repro.core", "repro.workloads", "repro.bench",
                   "repro.viz", "repro.obs", "repro.engine"):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"


def test_public_functions_have_docstrings():
    """Every public callable reachable from the package roots documents
    itself -- the deliverable requires doc comments on public items."""
    import importlib
    import inspect

    def documented(cls, mname, member) -> bool:
        if (getattr(member, "__doc__", "") or "").strip():
            return True
        # Interface implementations inherit their contract's docstring.
        for base in cls.__mro__[1:]:
            inherited = getattr(base, mname, None)
            if inherited is not None and (inherited.__doc__ or "").strip():
                return True
        return False

    # Trivial observers implement the event protocol documented on the
    # Detector ABC without inheriting from it; their class docstrings
    # cover the uniform method set.
    exempt_classes = {"NullObserver", "EventTracer"}

    undocumented = []
    for module in ("repro", "repro.core", "repro.lattice",
                   "repro.forkjoin", "repro.detectors"):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            if name in exempt_classes:
                continue
            obj = getattr(mod, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{module}.{name}")
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not callable(member):
                        continue
                    if not documented(obj, mname, member):
                        undocumented.append(f"{module}.{name}.{mname}")
    assert not undocumented, undocumented
