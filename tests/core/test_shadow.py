"""Tests for the shadow-memory accounting container."""

from __future__ import annotations

from repro.core.shadow import ShadowMap


def list_cell_entries(cell):
    return len(cell)


class TestShadowMap:
    def test_put_get(self):
        sm = ShadowMap(list_cell_entries)
        sm.put("x", [1])
        assert sm.get("x") == [1]
        assert sm.get("y") is None
        assert "x" in sm and "y" not in sm
        assert len(sm) == 1

    def test_total_and_max_entries(self):
        sm = ShadowMap(list_cell_entries)
        sm.put("x", [1])
        sm.put("y", [1, 2, 3])
        assert sm.total_entries() == 4
        assert sm.max_entries_per_loc() == 3
        assert sm.mean_entries_per_loc() == 2.0

    def test_empty_stats(self):
        sm = ShadowMap(list_cell_entries)
        assert sm.total_entries() == 0
        assert sm.max_entries_per_loc() == 0
        assert sm.mean_entries_per_loc() == 0.0

    def test_peak_tracks_history_not_current(self):
        sm = ShadowMap(list_cell_entries)
        cell = [1, 2, 3, 4]
        sm.put("x", cell)
        assert sm.peak_entries_per_loc == 4
        cell.clear()
        sm.touch("x")
        assert sm.max_entries_per_loc() == 0
        assert sm.peak_entries_per_loc == 4  # peak is sticky

    def test_touch_after_inplace_growth(self):
        sm = ShadowMap(list_cell_entries)
        cell = [1]
        sm.put("x", cell)
        cell.append(2)
        sm.touch("x")
        assert sm.total_entries() == 2
        assert sm.peak_entries_per_loc == 2

    def test_iteration(self):
        sm = ShadowMap(list_cell_entries)
        sm.put("a", [1])
        sm.put("b", [2])
        assert sorted(sm) == ["a", "b"]
        assert dict(sm.items()) == {"a": [1], "b": [2]}
