"""Tests for traversal construction helpers and validity checkers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.traversal import (
    annotate_last_arcs,
    check_delayed_wellformed,
    check_topological,
    check_wellformed,
    delay_traversal,
    last_arc_map,
    loop_positions,
    threads_of_delayed,
)
from repro.errors import TraversalError
from repro.events import Arc, Loop, StopArc, format_traversal
from repro.lattice.dominance import Diagram
from repro.lattice.generators import figure3_diagram
from repro.lattice.nonseparating import (
    delayed_nonseparating_traversal,
    nonseparating_traversal,
)
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices


class TestHelpers:
    def test_loop_positions(self):
        items = [Loop("a"), Arc("a", "b"), Loop("b")]
        assert loop_positions(items) == {"a": 0, "b": 2}

    def test_loop_positions_rejects_duplicates(self):
        with pytest.raises(TraversalError, match="visited twice"):
            loop_positions([Loop("a"), Loop("a")])

    def test_last_arc_map_takes_final_occurrence(self):
        items = [Loop(1), Arc(1, 2), Loop(2), Arc(1, 3), Loop(3)]
        assert last_arc_map(items) == {1: 3}

    def test_annotate_last_arcs(self):
        items = [Loop(1), Arc(1, 2), Loop(2), Arc(1, 3), Loop(3)]
        out = annotate_last_arcs(items)
        assert out[1] == Arc(1, 2, last=False)
        assert out[3] == Arc(1, 3, last=True)


class TestCheckers:
    def test_wellformed_accepts_figure4(self):
        check_wellformed(nonseparating_traversal(figure3_diagram()))

    def test_wellformed_rejects_stop_arcs(self):
        with pytest.raises(TraversalError, match="stop-arc"):
            check_wellformed([Loop(1), StopArc(1)])

    def test_wellformed_rejects_duplicate_arcs(self):
        items = [Loop(1), Arc(1, 2), Arc(1, 2, last=True), Loop(2)]
        with pytest.raises(TraversalError, match="twice"):
            check_wellformed(items)

    def test_wellformed_rejects_arc_before_source_loop(self):
        items = [Arc(1, 2, last=True), Loop(1), Loop(2)]
        with pytest.raises(TraversalError):
            check_wellformed(items)

    def test_wellformed_rejects_wrong_last_flag(self):
        items = [Loop(1), Arc(1, 2), Loop(2)]  # (1,2) should be last
        with pytest.raises(TraversalError, match="last flag"):
            check_wellformed(items)

    def test_topological_rejects_inverted_order(self, fig3_poset):
        items = [Loop(2), Loop(1)]
        with pytest.raises(TraversalError, match="visited after"):
            check_topological(items, fig3_poset.leq)

    def test_delayed_wellformed_accepts_figure7(self, fig3_poset):
        items = delayed_nonseparating_traversal(
            figure3_diagram(), fig3_poset.leq
        )
        check_delayed_wellformed(items)

    def test_delayed_rejects_stop_arc_without_delayed_arc(self):
        items = [Loop(1), StopArc(1), Loop(2)]
        with pytest.raises(TraversalError, match="no delayed arc"):
            check_delayed_wellformed(items)

    def test_delayed_rejects_double_stop_arc(self):
        items = [
            Loop(1), StopArc(1), StopArc(1), Loop(2),
            Arc(1, 2, last=True),
        ]
        with pytest.raises(TraversalError, match="two stop-arcs"):
            check_delayed_wellformed(items)


class TestDelayTransform:
    def test_figure7_verbatim(self, fig3_poset):
        """The delayed traversal prefix must match Figure 7's caption."""
        items = delayed_nonseparating_traversal(
            figure3_diagram(), fig3_poset.leq
        )
        text = format_traversal(items)
        assert text.startswith(
            "(1, 1)(1, 2)(2, 2)(2, 3)(3, 3)"
            "(3, \N{MULTIPLICATION SIGN})(2, \N{MULTIPLICATION SIGN})"
            "(1, 4)(4, 4)(2, 5)(4, 5)(5, 5)"
        )

    def test_delay_count(self, fig3_poset):
        base = nonseparating_traversal(figure3_diagram())
        delayed = delay_traversal(base, fig3_poset.leq)
        stop_arcs = [x for x in delayed if isinstance(x, StopArc)]
        # Figure 7: arcs (2,5), (3,6), (5,8) and (6,9) are delayed.
        assert len(delayed) == len(base) + len(stop_arcs)
        assert {s.src for s in stop_arcs} == {2, 3, 5, 6}

    def test_chain_needs_no_delays(self):
        from repro.lattice.generators import chain

        g = chain(5)
        p = Poset(g)
        d = Diagram(g, {i: (i, i) for i in range(5)})
        base = nonseparating_traversal(d)
        assert delay_traversal(base, p.leq) == annotate_last_arcs(base)

    def test_figure7_threads(self, fig3_poset):
        items = delayed_nonseparating_traversal(
            figure3_diagram(), fig3_poset.leq
        )
        threads = {tuple(t) for t in threads_of_delayed(items)}
        # Section 4: "the threads in Figure 7 are {2},{3},{5},{6} and
        # {1,4,7,8,9}".
        assert threads == {(2,), (3,), (5,), (6,), (1, 4, 7, 8, 9)}

    @settings(max_examples=60, deadline=None)
    @given(graph=two_dim_lattices())
    def test_delayed_wellformed_on_random_lattices(self, graph):
        poset = Poset(graph)
        diagram = Diagram.from_poset(poset)
        base = nonseparating_traversal(diagram)
        check_wellformed(base)
        check_topological(base, poset.leq)
        delayed = delay_traversal(base, poset.leq)
        check_delayed_wellformed(delayed)

    @settings(max_examples=60, deadline=None)
    @given(graph=two_dim_lattices())
    def test_threads_partition_vertices(self, graph):
        poset = Poset(graph)
        diagram = Diagram.from_poset(poset)
        delayed = delayed_nonseparating_traversal(diagram, poset.leq)
        threads = threads_of_delayed(delayed)
        flat = [v for t in threads for v in t]
        assert sorted(flat, key=poset.index) == poset.vertices()
        assert len(set(flat)) == len(flat)


class TestDelayTransformErrors:
    def test_delayed_non_last_arc_rejected(self):
        """The stop-arc semantics of Figure 8 is only sound when delayed
        arcs are last-arcs; the transform asserts it (in planar monotone
        diagrams this always holds -- this input is artificial)."""
        items = [
            Loop("a"),
            Arc("a", "b"),          # non-last (a->c follows)
            Loop("x"),              # x with x ⊑ b visited after the arc
            Arc("x", "b"),
            Loop("b"),
            Arc("a", "c"),
            Loop("c"),
        ]

        def reaches(u, v):
            return (u, v) in {("x", "b"), ("a", "b"), ("a", "c")}

        with pytest.raises(TraversalError, match="not a last-arc"):
            delay_traversal(items, reaches)
