"""Unit and property tests for the labeled union-find."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.unionfind import IntUnionFind, UnionFind


class TestIntUnionFind:
    def test_singletons(self):
        uf = IntUnionFind(3)
        assert len(uf) == 3
        assert [uf.find(i) for i in range(3)] == [0, 1, 2]

    def test_make_appends_ids(self):
        uf = IntUnionFind()
        assert uf.make() == 0
        assert uf.make() == 1
        assert len(uf) == 2

    def test_union_keeps_t_side_label(self):
        uf = IntUnionFind(4)
        # Paper convention: Union(t, s) labels the merged set by t's set.
        assert uf.union(2, 3) == 2
        assert uf.find(3) == 2
        assert uf.union(1, 2) == 1
        assert uf.find(3) == 1
        assert uf.find(2) == 1

    def test_union_label_follows_previous_merges(self):
        uf = IntUnionFind(4)
        uf.union(0, 1)  # label 0
        # 1's set is labeled 0; union with 1 on the t side keeps label 0.
        assert uf.union(1, 2) == 0
        assert uf.find(2) == 0

    def test_self_union_is_noop(self):
        uf = IntUnionFind(2)
        assert uf.union(1, 1) == 1
        assert uf.find(1) == 1

    def test_same_set(self):
        uf = IntUnionFind(4)
        uf.union(0, 1)
        assert uf.same_set(0, 1)
        assert not uf.same_set(0, 2)

    def test_sets_partition(self):
        uf = IntUnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        sets = uf.sets()
        assert sets == {0: [0, 1], 2: [2], 3: [3, 4]}

    def test_counters(self):
        uf = IntUnionFind(3)
        uf.find(0)
        uf.union(0, 1)
        uf.find(1)
        assert uf.find_count == 2
        assert uf.union_count == 1

    def test_no_path_compression_still_correct(self):
        uf = IntUnionFind(10, path_compression=False)
        for i in range(9):
            uf.union(i + 1, i)
        assert all(uf.find(i) == 9 for i in range(10))

    def test_no_rank_linking_still_correct(self):
        uf = IntUnionFind(10, link_by_rank=False)
        for i in range(9):
            uf.union(i + 1, i)
        assert all(uf.find(i) == 9 for i in range(10))

    def test_path_compression_reduces_hops(self):
        def hops(compress: bool) -> int:
            uf = IntUnionFind(
                200, path_compression=compress, link_by_rank=False
            )
            for i in range(199):
                uf.union(i + 1, i)
            for _ in range(5):
                for i in range(200):
                    uf.find(i)
            return uf.hop_count

        assert hops(True) < hops(False)

    def test_sets_does_not_touch_counters(self):
        """Inspecting the partition must not perturb the op counters
        (the A1 ablation benchmarks read them after the fact)."""
        uf = IntUnionFind(6, link_by_rank=False)
        uf.union(1, 0)
        uf.union(2, 1)
        uf.union(5, 4)
        before = (uf.find_count, uf.union_count, uf.hop_count)
        partition = uf.sets()
        assert (uf.find_count, uf.union_count, uf.hop_count) == before
        assert partition == {2: [0, 1, 2], 3: [3], 5: [4, 5]}

    def test_sets_does_not_compress_paths(self):
        """The read-only walk must also leave the tree shape alone, or
        it would still skew future hop counts."""
        uf = IntUnionFind(50, path_compression=True, link_by_rank=False)
        for i in range(49):
            uf.union(i + 1, i)  # a long path: 0 -> 1 -> ... -> 49
        uf.sets()
        uf.find(0)  # first find after sets() must still walk the path
        assert uf.hop_count == 49


class TestGenericUnionFind:
    def test_hashable_elements(self):
        uf = UnionFind()
        uf.union("b", "a")
        assert uf.find("a") == "b"

    def test_lookup_is_non_creating(self):
        """A mistyped element in a query must raise, not quietly become
        a fresh singleton that pollutes the partition."""
        uf = UnionFind()
        uf.union("b", "a")
        with pytest.raises(KeyError, match="never added"):
            uf.find("c")
        with pytest.raises(KeyError, match="never added"):
            uf.same_set("a", "c")
        assert "c" not in uf
        assert len(uf) == 2
        assert uf.sets() == {"b": ["b", "a"]}

    def test_interning_only_in_add_and_union(self):
        uf = UnionFind()
        uf.add("x")
        uf.union("y", "z")
        assert uf.find("x") == "x"
        assert uf.find("z") == "y"

    def test_contains(self):
        uf = UnionFind()
        uf.add((1, 2))
        assert (1, 2) in uf
        assert (3, 4) not in uf

    def test_sets(self):
        uf = UnionFind()
        uf.union("x", "y")
        uf.add("z")
        assert uf.sets() == {"x": ["x", "y"], "z": ["z"]}

    def test_same_set(self):
        uf = UnionFind()
        uf.union(10, 20)
        uf.add(30)
        assert uf.same_set(10, 20)
        assert not uf.same_set(10, 30)

    def test_stats_exposed(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.stats.union_count == 1


class _ModelPartition:
    """Reference model: explicit sets with explicit labels."""

    def __init__(self, n: int) -> None:
        self.sets = {i: {i} for i in range(n)}
        self.label_of = {i: i for i in range(n)}  # element -> set label

    def find(self, x: int) -> int:
        return self.label_of[x]

    def union(self, t: int, s: int) -> int:
        lt, ls = self.label_of[t], self.label_of[s]
        if lt == ls:
            return lt
        merged = self.sets.pop(lt) | self.sets.pop(ls)
        self.sets[lt] = merged
        for e in merged:
            self.label_of[e] = lt
        return lt


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(2, 30),
    ops=st.lists(st.tuples(st.integers(0, 10**9), st.integers(0, 10**9)),
                 max_size=60),
    compress=st.booleans(),
    by_rank=st.booleans(),
)
def test_matches_reference_model(n, ops, compress, by_rank):
    """Any op sequence: labels match a brute-force partition model."""
    uf = IntUnionFind(n, path_compression=compress, link_by_rank=by_rank)
    model = _ModelPartition(n)
    for a, b in ops:
        t, s = a % n, b % n
        assert uf.union(t, s) == model.union(t, s)
    for x in range(n):
        assert uf.find(x) == model.find(x)
