"""Unit tests for the flagship 2D race detector (Figure 6 semantics)."""

from __future__ import annotations

import pytest

from repro.core.detector import RaceDetector2D
from repro.core.reports import AccessKind
from repro.errors import DetectorError


def fresh():
    d = RaceDetector2D()
    root = d.spawn_root()
    return d, root


class TestBasicRaces:
    def test_write_write_race(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_write(c, "x")
        d.on_halt(c)
        d.on_write(main, "x")
        assert len(d.races) == 1
        r = d.races[0]
        assert r.kind is AccessKind.WRITE
        assert r.prior_kind is AccessKind.WRITE
        assert r.loc == "x"
        d.on_join(main, c)

    def test_read_write_race(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_read(c, "x")
        d.on_halt(c)
        d.on_write(main, "x")
        assert len(d.races) == 1
        assert d.races[0].prior_kind is AccessKind.READ
        d.on_join(main, c)

    def test_write_read_race(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_write(c, "x")
        d.on_halt(c)
        d.on_read(main, "x")
        assert len(d.races) == 1
        assert d.races[0].kind is AccessKind.READ
        assert d.races[0].prior_kind is AccessKind.WRITE
        d.on_join(main, c)

    def test_read_read_is_not_a_race(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_read(c, "x")
        d.on_halt(c)
        d.on_read(main, "x")
        assert d.races == []
        d.on_join(main, c)

    def test_join_orders_accesses(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_write(c, "x")
        d.on_halt(c)
        d.on_join(main, c)
        d.on_write(main, "x")
        assert d.races == []

    def test_same_task_never_races_with_itself(self):
        d, main = fresh()
        d.on_write(main, "x")
        d.on_read(main, "x")
        d.on_write(main, "x")
        assert d.races == []

    def test_transitive_join_ordering(self):
        """a joined by c, c joined by main: a's write ordered before main."""
        d, main = fresh()
        a = d.on_fork(main)
        d.on_write(a, "x")
        d.on_halt(a)
        c = d.on_fork(main)
        d.on_join(c, a)
        d.on_step(c)
        d.on_halt(c)
        d.on_join(main, c)
        d.on_write(main, "x")
        assert d.races == []

    def test_figure2_scenario(self):
        """A and B read, D writes; A races with D, B does not."""
        d, main = fresh()
        a = d.on_fork(main)
        d.on_read(a, "l", label="A")
        d.on_halt(a)
        d.on_read(main, "l", label="B")
        c = d.on_fork(main)
        d.on_join(c, a)
        d.on_step(c)
        d.on_halt(c)
        d.on_write(main, "l", label="D")
        d.on_join(main, c)
        assert len(d.races) == 1
        assert d.races[0].label == "D"

    def test_sibling_tasks_race(self):
        d, main = fresh()
        a = d.on_fork(main)
        d.on_write(a, "x")
        d.on_halt(a)
        b = d.on_fork(main)
        d.on_write(b, "x")
        d.on_halt(b)
        assert len(d.races) == 1
        d.on_join(main, b)
        d.on_join(main, a)

    def test_race_detected_against_unjoined_grandchild(self):
        """A halted-but-unjoined task's history stays concurrent."""
        d, main = fresh()
        a = d.on_fork(main)
        g = d.on_fork(a)  # grandchild, left unjoined by a
        d.on_write(g, "x")
        d.on_halt(g)
        d.on_step(a)
        d.on_halt(a)
        d.on_join(main, a)
        d.on_write(main, "x")  # still races with g (never joined)
        assert len(d.races) == 1
        d.on_join(main, g)
        d.on_write(main, "x")  # now ordered
        assert len(d.races) == 1


class TestMultipleLocations:
    def test_locations_are_independent(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_write(c, "x")
        d.on_write(c, "y")
        d.on_halt(c)
        d.on_write(main, "x")
        assert len(d.races) == 1
        d.on_read(main, "z")
        assert len(d.races) == 1
        d.on_join(main, c)

    def test_shadow_space_is_constant(self):
        d, main = fresh()
        tasks = []
        for _ in range(50):
            c = d.on_fork(main)
            d.on_read(c, "shared")
            d.on_write(c, ("private", c))
            d.on_halt(c)
            tasks.append(c)
        for c in reversed(tasks):
            d.on_join(main, c)
        # 50 concurrent readers of "shared": still <= 2 entries per cell.
        assert d.space_per_location() <= 2
        assert d.shadow.max_entries_per_loc() <= 2


class TestLifecycleErrors:
    def test_join_running_thread_rejected(self):
        d, main = fresh()
        c = d.on_fork(main)
        with pytest.raises(DetectorError, match="running"):
            d.on_join(main, c)

    def test_double_join_rejected(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_halt(c)
        d.on_join(main, c)
        with pytest.raises(DetectorError, match="twice"):
            d.on_join(main, c)

    def test_ops_after_halt_rejected(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_halt(c)
        with pytest.raises(DetectorError, match="halted"):
            d.on_write(c, "x")

    def test_unknown_thread_rejected(self):
        d, _ = fresh()
        with pytest.raises(DetectorError, match="unknown"):
            d.on_read(99, "x")

    def test_fork_id_mismatch_detected(self):
        d, main = fresh()
        with pytest.raises(DetectorError, match="mismatch"):
            d.on_fork(main, child=17)

    def test_root_id_mismatch_detected(self):
        d = RaceDetector2D()
        with pytest.raises(DetectorError, match="mismatch"):
            d.on_root(3)


class TestFigure6Erratum:
    def test_literal_mode_flags_concurrent_reads(self):
        """Figure 6 as printed compares a read against R, which flags
        read-read pairs; the prose semantics does not."""
        def drive(detector):
            main = detector.spawn_root()
            c = detector.on_fork(main)
            detector.on_read(c, "x")
            detector.on_halt(c)
            detector.on_read(main, "x")
            detector.on_join(main, c)
            return detector.races

        literal = RaceDetector2D(paper_figure6_literal=True)
        prose = RaceDetector2D()
        assert len(drive(literal)) == 1
        assert len(drive(prose)) == 0

    def test_literal_mode_misses_write_read(self):
        """The printed On-Read never consults W: a prior concurrent
        write goes unflagged on a read (why the prose reading is the
        right one)."""
        literal = RaceDetector2D(paper_figure6_literal=True)
        main = literal.spawn_root()
        c = literal.on_fork(main)
        literal.on_write(c, "x")
        literal.on_halt(c)
        literal.on_read(main, "x")
        assert literal.races == []


class TestAccounting:
    def test_space_per_thread_constant(self):
        d, main = fresh()
        assert d.space_per_thread() == 6
        for _ in range(10):
            c = d.on_fork(main)
            d.on_halt(c)
        assert d.space_per_thread() == 6
        assert d.thread_count == 11

    def test_op_index_advances(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_write(c, "x")
        assert d.op_index == 2

    def test_races_carry_op_index_and_label(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_write(c, "x")
        d.on_halt(c)
        d.on_write(main, "x", label="here")
        assert d.races[0].label == "here"
        assert d.races[0].op_index == d.op_index

    def test_unionfind_counters_exposed(self):
        d, main = fresh()
        c = d.on_fork(main)
        d.on_halt(c)
        d.on_join(main, c)
        assert d.unionfind.union_count == 1
