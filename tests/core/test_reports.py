"""Tests for race reports and access kinds."""

from __future__ import annotations

import pytest

from repro.core.reports import AccessKind, RaceReport


class TestAccessKind:
    def test_conflict_matrix(self):
        R, W = AccessKind.READ, AccessKind.WRITE
        assert not R.conflicts_with(R)
        assert R.conflicts_with(W)
        assert W.conflicts_with(R)
        assert W.conflicts_with(W)


class TestRaceReport:
    def test_str_mentions_location_and_tasks(self):
        rep = RaceReport(
            loc="x",
            task=3,
            kind=AccessKind.WRITE,
            prior_kind=AccessKind.READ,
            prior_repr=1,
            label="loop body",
        )
        text = str(rep)
        assert "'x'" in text and "task 3" in text and "loop body" in text

    def test_frozen(self):
        rep = RaceReport(
            loc="x", task=0, kind=AccessKind.READ,
            prior_kind=AccessKind.WRITE,
        )
        with pytest.raises(AttributeError):
            rep.task = 5  # type: ignore[misc]
