"""Tests for the delayed/relaxed algorithm (Figure 8, Theorem 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.delayed import DelayedSupremaWalker
from repro.events import Arc, Loop, StopArc
from repro.lattice.dominance import Diagram
from repro.lattice.generators import figure3_diagram
from repro.lattice.nonseparating import delayed_nonseparating_traversal
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices


def check_relaxed_conditions(graph):
    """Machine-check conditions (6) and (7) of Section 4.

    Along the delayed traversal, at every vertex ``t``:

    * (6) ``Sup(x, t) = t  iff  x ⊑ t`` for every previously visited x;
    * (7) for previously visited pairs (x, y) with y visited after x,
      the *stored* answer ``r = Sup(x, y)`` (as the race detector would
      store it) satisfies ``Sup(r, t) = t iff Sup(x, t) = t and
      Sup(y, t) = t``.
    """
    poset = Poset(graph)
    diagram = Diagram.from_poset(poset)
    traversal = delayed_nonseparating_traversal(diagram, poset.leq)
    walker = DelayedSupremaWalker()
    visited = []
    stored = []  # (x, y, Sup(x, y) at y's visit)
    failures = []

    def on_visit(t, w):
        for x in visited:
            if (w.sup(x, t) == t) != poset.leq(x, t):
                failures.append(("(6)", x, t))
        for x, y, r in stored:
            lhs = w.sup(r, t) == t
            rhs = (w.sup(x, t) == t) and poset.leq(y, t)
            if lhs != rhs:
                failures.append(("(7)", x, y, r, t))
        for x in visited:
            stored.append((x, t, w.sup(x, t)))
        visited.append(t)

    walker.walk(traversal, on_visit)
    assert not failures, failures[:5]


class TestPaperBehaviour:
    def test_relaxed_answer_may_differ_from_supremum(self):
        """Section 4's example: executing Figure 2 in order A B C D,
        Sup(A, B) is allowed to return A instead of the true sup C."""
        # Thread-compressed Figure 2 stream: main=0, a=1, c=2.
        w = DelayedSupremaWalker(check_preconditions=False)
        w.feed(Loop(0))          # main starts
        w.feed(Arc(0, 1))        # fork a
        w.feed(Loop(1))          # A (read)
        w.feed(StopArc(1))       # a halts
        w.feed(Loop(0))          # B (read by main)
        # Query Sup(a, main) right now: a's history is NOT ordered before
        # main's current op; the placeholder answer is task a itself.
        assert w.sup(1, 0) == 1

    def test_stop_arc_unmarks(self):
        w = DelayedSupremaWalker(check_preconditions=False)
        w.feed(Loop(1))
        assert w.is_visited(1)
        w.feed(StopArc(1))
        assert not w.is_visited(1)

    def test_delayed_union_corrects_placeholder(self):
        """After the delayed last-arc is finally visited, the placeholder
        root's set merges into the true supremum's set."""
        w = DelayedSupremaWalker(check_preconditions=False)
        w.feed(Loop(1))
        w.feed(StopArc(1))
        w.feed(Loop(2))
        w.feed(Arc(1, 2, last=True))  # the delayed arc arrives
        assert w.unionfind.find(1) == 2
        assert w.sup(1, 2) == 2

    def test_figure7_conditions(self, fig3_graph):
        check_relaxed_conditions(fig3_graph)


class TestFamilies:
    @pytest.mark.parametrize("rows,cols", [(1, 4), (2, 3), (3, 3), (4, 4)])
    def test_grids(self, rows, cols):
        from repro.lattice.generators import grid_digraph

        check_relaxed_conditions(grid_digraph(rows, cols))

    def test_figure2(self, fig2_graph):
        check_relaxed_conditions(fig2_graph)

    @settings(max_examples=60, deadline=None)
    @given(graph=two_dim_lattices())
    def test_random_lattices(self, graph):
        check_relaxed_conditions(graph)

    def test_repeated_loops_allowed(self):
        """Thread-compressed traversals revisit the same vertex; the
        delayed walker must accept that (Section 4, transformation (8))."""
        w = DelayedSupremaWalker(check_preconditions=False)
        w.feed(Loop(0))
        w.feed(Loop(0))
        w.feed(Arc(0, 1))
        w.feed(Loop(1))
        w.feed(Loop(1))
        assert w.sup(0, 1) == 1
