"""Tests for the offline suprema algorithm (Figure 5, Theorems 1-3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.suprema import SupremaWalker
from repro.errors import QueryPreconditionError, TraversalError
from repro.events import Arc, Loop, StopArc
from repro.lattice.dominance import Diagram
from repro.lattice.generators import figure3_diagram, grid_diagram
from repro.lattice.nonseparating import nonseparating_traversal
from repro.lattice.poset import Poset

from tests.conftest import two_dim_lattices


def walk_and_query_all(graph):
    """Run Figure 5 on a lattice; compare every valid query to the oracle.

    At each visited vertex ``t``, query ``Sup(x, t)`` for every
    previously visited ``x`` (all of which are in the closure of the
    prefix) and assert the answer equals the true supremum -- Theorem 1
    guarantees the *exact* supremum offline, not just the relaxed
    semantics.
    """
    poset = Poset(graph)
    diagram = Diagram.from_poset(poset)
    traversal = nonseparating_traversal(diagram)
    walker = SupremaWalker()
    visited = []
    failures = []

    def on_visit(t, w):
        for x in visited:
            got = w.sup(x, t)
            true = poset.sup(x, t)
            if got != true:
                failures.append((x, t, got, true))
        visited.append(t)

    walker.walk(traversal, on_visit)
    assert not failures, failures[:5]
    assert len(visited) == len(poset)


class TestPaperExamples:
    def test_theorem1_worked_examples(self, fig3_diagram):
        """Section 3: at t=5, sup{3,5}=6 (unvisited root) and sup{1,5}=5."""
        walker = SupremaWalker()
        answers = {}

        def on_visit(t, w):
            if t == 5:
                answers["3,5"] = w.sup(3, 5)
                answers["1,5"] = w.sup(1, 5)
                answers["6,5"] = w.sup(6, 5)

        walker.walk(nonseparating_traversal(fig3_diagram), on_visit)
        assert answers == {"3,5": 6, "1,5": 5, "6,5": 6}

    def test_query_validity_example(self, fig3_diagram):
        """Section 3: after the prefix ending in (5,5), Sup(6,5) is valid
        (6 is in the closure) while Sup(7,5) is not."""
        walker = SupremaWalker()
        seen = {}

        def on_visit(t, w):
            if t == 5:
                seen["6 known"] = w.is_known(6)
                seen["7 known"] = w.is_known(7)
                with pytest.raises(QueryPreconditionError):
                    w.sup(7, 5)

        walker.walk(nonseparating_traversal(fig3_diagram), on_visit)
        assert seen == {"6 known": True, "7 known": False}

    def test_figure3_exhaustive(self, fig3_graph):
        walk_and_query_all(fig3_graph)


class TestFamilies:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 5), (3, 3), (4, 6)])
    def test_grids_exhaustive(self, rows, cols):
        walk_and_query_all(grid_diagram(rows, cols).graph)

    def test_diamond(self):
        from repro.lattice.generators import diamond

        walk_and_query_all(diamond())

    def test_chain(self):
        from repro.lattice.generators import chain

        walk_and_query_all(chain(6))

    @settings(max_examples=80, deadline=None)
    @given(graph=two_dim_lattices())
    def test_random_lattices_exhaustive(self, graph):
        walk_and_query_all(graph)


class TestRemark2TreeCase:
    def test_tree_suprema_root_always_after_t(self):
        """Remark 2: on a (reversed) tree, the root of x's tree is never
        visited before t, so Sup always answers the root itself."""
        # An in-tree (directed towards its root 0 at the bottom): that is
        # a semilattice where sup = lowest common "descendant".
        arcs = [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)]
        from repro.lattice.digraph import Digraph

        g = Digraph(arcs)
        poset = Poset(g)
        diagram = Diagram.from_poset(poset)
        traversal = nonseparating_traversal(diagram)
        walker = SupremaWalker()
        visited = []

        def on_visit(t, w):
            for x in visited:
                got = w.sup(x, t)
                assert got == poset.sup(x, t)
            visited.append(t)

        walker.walk(traversal, on_visit)


class TestWalkerMechanics:
    def test_rejects_stop_arcs(self):
        walker = SupremaWalker()
        walker.feed(Loop(1))
        with pytest.raises(TraversalError, match="DelayedSupremaWalker"):
            walker.feed(StopArc(1))

    def test_query_requires_current_vertex(self):
        walker = SupremaWalker()
        walker.feed(Loop(1))
        walker.feed(Loop(2))
        with pytest.raises(QueryPreconditionError, match="traversal is at"):
            walker.sup(1, 1)  # t must equal the cursor (2)

    def test_checks_can_be_disabled(self):
        walker = SupremaWalker(check_preconditions=False)
        walker.feed(Loop(1))
        walker.feed(Loop(2))
        assert walker.sup(1, 1) == 1  # nonsense query, but allowed

    def test_non_last_arcs_do_not_union(self):
        walker = SupremaWalker()
        walker.feed(Loop(1))
        walker.feed(Arc(1, 2, last=False))
        assert not walker.unionfind.same_set(1, 2)

    def test_non_last_arcs_register_their_endpoints(self):
        """Both endpoints of any visited arc are in the closure of the
        prefix, so a ``sup`` query on them is valid even before the
        target's loop (Figure 5 traversals visit arcs ahead of loops)."""
        walker = SupremaWalker()
        walker.feed(Loop(1))
        walker.feed(Arc(1, 3, last=False))
        walker.feed(Loop(2))
        assert walker.is_known(3)
        # 3's tree root (itself) is unvisited: the answer is the root.
        assert walker.sup(3, 2) == 3
        assert walker.sup(1, 2) == 2  # 1 is visited: ordered before 2

    def test_unknown_vertex_still_raises_without_checks(self):
        """Lookup is non-creating: even with precondition checks off, a
        query on a vertex outside the closure cannot silently intern it
        (which used to corrupt the forest) -- it raises instead."""
        walker = SupremaWalker(check_preconditions=False)
        walker.feed(Loop(1))
        with pytest.raises(QueryPreconditionError, match="closure"):
            walker.sup(99, 1)

    def test_last_arc_unions_under_target_label(self):
        walker = SupremaWalker()
        walker.feed(Loop(1))
        walker.feed(Arc(1, 2, last=True))
        assert walker.unionfind.find(1) == 2

    def test_ordered_before(self, fig3_diagram):
        walker = SupremaWalker()
        results = {}

        def on_visit(t, w):
            if t == 5:
                results["1<=5"] = w.ordered_before(1, 5)
                results["3<=5"] = w.ordered_before(3, 5)

        walker.walk(nonseparating_traversal(fig3_diagram), on_visit)
        assert results == {"1<=5": True, "3<=5": False}

    def test_feed_rejects_garbage(self):
        walker = SupremaWalker()
        with pytest.raises(TraversalError):
            walker.feed("not an item")  # type: ignore[arg-type]
