"""Tests for trace serialisation and the replayer."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import Lattice2DDetector, VectorClockDetector
from repro.errors import ProgramError, StructureError
from repro.events import (
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.forkjoin import fork, join, read, run, write
from repro.forkjoin.replay import replay_events
from repro.trace import dump_events, dumps_event, load_events, loads_event
from repro.workloads.synthetic import SyntheticConfig, random_program


def record(body, *args):
    ex = run(body, *args, record_events=True)
    assert ex.events is not None
    return ex.events


def racy_body(self):
    c = yield fork(child_body)
    yield read(("arr", 3), label="r1")
    yield join(c)


def child_body(self):
    yield write(("arr", 3))


class TestEventCodec:
    @pytest.mark.parametrize(
        "ev",
        [
            ForkEvent(0, 1),
            JoinEvent(0, 1, label="sync"),
            HaltEvent(2),
            StepEvent(1, label="work"),
            ReadEvent(1, "x"),
            WriteEvent(0, ("arr", 3, ("nested", 1))),
            ReadEvent(2, None),
            WriteEvent(0, 42),
        ],
    )
    def test_roundtrip(self, ev):
        assert loads_event(dumps_event(ev)) == ev

    def test_exotic_location_stringified(self):
        ev = WriteEvent(0, frozenset({1}))
        back = loads_event(dumps_event(ev))
        assert back.loc == str(frozenset({1}))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProgramError, match="unknown event kind"):
            loads_event('{"k":"explode"}')


class TestFileRoundtrip:
    def test_stream_roundtrip(self):
        events = record(racy_body)
        buf = io.StringIO()
        n = dump_events(events, buf)
        assert n == len(events)
        buf.seek(0)
        assert load_events(buf) == events

    def test_path_roundtrip(self, tmp_path):
        events = record(racy_body)
        path = str(tmp_path / "t.jsonl")
        dump_events(events, path)
        assert load_events(path) == events

    def test_header_validated(self):
        with pytest.raises(ProgramError, match="not a repro-trace"):
            load_events(io.StringIO('{"format":"other"}\n'))
        with pytest.raises(ProgramError, match="version"):
            load_events(
                io.StringIO('{"format":"repro-trace","version":99}\n')
            )
        with pytest.raises(ProgramError, match="empty"):
            load_events(io.StringIO(""))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_random_program_roundtrip(self, seed):
        cfg = SyntheticConfig(seed=seed, max_tasks=10, ops_per_task=4)
        events = record(random_program(cfg))
        buf = io.StringIO()
        dump_events(events, buf)
        buf.seek(0)
        assert load_events(buf) == events


class TestReplay:
    def test_replay_reproduces_detection(self):
        events = record(racy_body)
        live = Lattice2DDetector()
        run(racy_body, observers=[live])
        replayed = Lattice2DDetector()
        ex = replay_events(events, observers=[replayed])
        assert ex.task_count == 2
        assert len(replayed.races) == len(live.races) == 1
        assert replayed.races[0].loc == live.races[0].loc

    def test_replay_through_different_detector(self):
        events = record(racy_body)
        vc = VectorClockDetector()
        replay_events(events, observers=[vc])
        assert len(vc.races) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_recorded_streams_always_replay(self, seed):
        cfg = SyntheticConfig(seed=seed, max_tasks=12, ops_per_task=5)
        events = record(random_program(cfg))
        det = Lattice2DDetector()
        replay_events(events, observers=[det])

    def test_replay_rejects_sparse_ids(self):
        with pytest.raises(StructureError, match="dense"):
            replay_events([ForkEvent(0, 5)])

    def test_replay_rejects_join_of_running(self):
        events = [ForkEvent(0, 1), JoinEvent(0, 1)]
        with pytest.raises(StructureError, match="running"):
            replay_events(events)

    def test_replay_rejects_op_after_halt(self):
        events = [HaltEvent(0), StepEvent(0)]
        with pytest.raises(StructureError, match="halted"):
            replay_events(events)

    def test_replay_rejects_unjoined_end(self):
        def child(self):
            yield write("x")

        def main(self):
            yield fork(child)

        events = record_unclean(main)
        with pytest.raises(StructureError, match="unjoined"):
            replay_events(events)
        replay_events(events, require_all_joined=False)

    def test_replay_rejects_non_events(self):
        with pytest.raises(ProgramError, match="not an event"):
            replay_events(["garbage"])


def record_unclean(body):
    ex = run(body, record_events=True, require_all_joined=False)
    assert ex.events is not None
    return ex.events
