"""Moderate-scale smoke tests: the system holds up beyond toy sizes.

These are not benchmarks (no timing assertions); they establish that
the data structures handle tens of thousands of operations and
thousands of tasks without recursion-limit, memory-blowup or quadratic
cliffs sneaking in.
"""

from __future__ import annotations

import pytest

from repro.core.suprema import SupremaWalker
from repro.detectors import Lattice2DDetector
from repro.forkjoin import run
from repro.forkjoin.pipeline import run_pipeline
from repro.lattice.generators import grid_diagram
from repro.lattice.nonseparating import nonseparating_traversal
from repro.workloads.pipelines import clean_pipeline, read_shared_pipeline
from repro.workloads.synthetic import SyntheticConfig, random_program


def test_pipeline_50k_ops_monitored():
    items, stages = clean_pipeline(400, 8)
    det = Lattice2DDetector()
    ex = run_pipeline(items, stages, observers=[det])
    assert ex.task_count == 3201
    assert ex.op_count > 15_000
    assert det.races == []
    assert det.shadow_peak_per_location() <= 2

def test_read_shared_4k_tasks():
    items, stages = read_shared_pipeline(1000, 4)
    det = Lattice2DDetector()
    ex = run_pipeline(items, stages, observers=[det])
    assert ex.task_count == 4001
    assert det.races == []
    assert det.shadow_peak_per_location() <= 2
    # Θ(1) per thread: exactly 6 words each.
    assert det.metadata_entries() == 6 * ex.task_count


def test_deep_fork_chain_10k():
    from repro.forkjoin import fork, join_left, write

    def nest(self, depth):
        if depth:
            yield write(("cell", depth))
            yield fork(nest, depth - 1)
            yield join_left()

    det = Lattice2DDetector()
    ex = run(nest, 10_000, observers=[det])
    assert ex.task_count == 10_001
    assert det.races == []


def test_large_synthetic_program():
    cfg = SyntheticConfig(
        seed=11, max_tasks=3000, ops_per_task=10, fork_probability=0.35,
        n_locations=64,
    )
    det = Lattice2DDetector()
    ex = run(random_program(cfg), observers=[det])
    assert ex.task_count > 1500
    assert det.shadow_peak_per_location() <= 2


def test_traversal_of_100x100_grid():
    diagram = grid_diagram(100, 100)
    items = nonseparating_traversal(diagram)
    walker = SupremaWalker(check_preconditions=False)
    for item in items:
        walker.feed(item)
    assert len(walker.unionfind) == 10_000
