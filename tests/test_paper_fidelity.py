"""Paper fidelity: quotable claims from the text, machine-checked.

Each test names the place in the paper it validates.  Heavier
reproductions live in ``benchmarks/``; these are the sentence-level
facts.
"""

from __future__ import annotations

import pytest

from repro.events import Arc, Loop, format_traversal
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram
from repro.lattice.generators import figure3_diagram, figure3_lattice
from repro.lattice.nonseparating import nonseparating_traversal
from repro.lattice.poset import Poset
from repro.lattice.series_parallel import is_series_parallel


class TestSection2:
    def test_fig2_sup_of_reads_is_C(self):
        """§2.3: 'For the graph in Figure 2 we have that sup{A, B}
        equals the vertex C.'"""
        from repro.lattice.generators import figure2_lattice

        poset = Poset(figure2_lattice())
        assert poset.sup("A", "B") == "C"

    def test_fig2_race_statement(self):
        """§2.3: 'A race exists between operations A and D ... B and D
        ... are ordered, and not racing.'"""
        from repro.lattice.generators import figure2_lattice

        poset = Poset(figure2_lattice())
        assert not poset.comparable("A", "D")
        assert poset.lt("B", "D")

    def test_abdc_is_not_left_to_right(self):
        """§2.3: 'our algorithm would traverse the graph in Figure 2 in
        the order A B C D, but not A B D C.'  The constructed traversal
        visits C before D (or the mirror: D before C but then B after
        ... ) -- concretely: the visit order is a linear extension in
        which C and D are separated by the left-to-right rule, and the
        non-separating construction never produces A B D C."""
        from repro.lattice.generators import figure2_lattice

        diagram = Diagram.from_poset(Poset(figure2_lattice()))
        order = [
            i.vertex for i in nonseparating_traversal(diagram)
            if isinstance(i, Loop)
        ]
        inner = [v for v in order if v in "ABCD"]
        assert inner in (["A", "B", "C", "D"], ["B", "D", "A", "C"])
        assert inner != ["A", "B", "D", "C"]


class TestSection3:
    def test_euler_bound_on_arcs(self):
        """Theorem 3's proof: 'by Euler's formula at most 3n - 6 = Θ(n)
        arcs are traversed, as the input diagram is planar.'"""
        from repro.lattice.generators import grid_diagram, random_staircase
        import random

        for diagram in (
            figure3_diagram(),
            grid_diagram(5, 7),
            Diagram.from_poset(
                Poset(random_staircase(6, 5, random.Random(3)))
            ),
        ):
            n = diagram.graph.vertex_count
            if n >= 3:
                assert diagram.graph.arc_count <= 3 * n - 6

    def test_closure_equals_forest_vertices(self):
        """§3: 'the closure of the prefix ending in (t,t) always equals
        the vertices of the forest T/(t,t).'"""
        poset = Poset(figure3_lattice())
        items = nonseparating_traversal(figure3_diagram())
        visited = []
        forest_vertices = set()
        for idx, item in enumerate(items):
            if isinstance(item, Arc) and item.last:
                forest_vertices.update((item.src, item.dst))
            if isinstance(item, Loop):
                visited.append(item.vertex)
                expect = poset.closure(visited)
                got = forest_vertices | set(visited)
                assert got == expect, (item.vertex, got, expect)

    def test_remark2_tree_roots_always_unvisited(self):
        """Remark 2: in the tree (semilattice) case 'it is always the
        case that t <=_T r' -- the root found by a query is never
        already visited, so the visited check is redundant."""
        from repro.core.suprema import SupremaWalker

        arcs = [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)]
        poset = Poset(Digraph(arcs))
        diagram = Diagram.from_poset(poset)
        walker = SupremaWalker()
        visited = []

        def on_visit(t, w):
            for x in visited:
                if not poset.leq(x, t):  # incomparable query
                    root = w.unionfind.find(x)
                    assert not w.is_visited(root)
            visited.append(t)

        walker.walk(nonseparating_traversal(diagram), on_visit)


class TestSection5:
    def test_rule10_passage_produces_non_sp(self):
        """§5: 'we can have the passage t -> y·t -> y·x·t -> x·t.  This
        results in a non-SP task graph.'  (t forks y, t forks x, x
        joins y.)"""
        from repro.forkjoin import build_task_graph, fork, join, run, step

        def task_y(self):
            yield step(label="y")

        def task_x(self, y):
            yield join(y)
            yield step(label="x")

        def t(self):
            y = yield fork(task_y)
            x = yield fork(task_x, y)
            yield step(label="t")
            yield join(x)

        ex = run(t, record_events=True)
        tg = build_task_graph(ex.events)
        assert not is_series_parallel(tg.graph.transitive_reduction())
        assert tg.poset.is_lattice()

    def test_fig9_line_snapshot_passage(self):
        """The same passage at the line level: t -> y·t -> y·x·t -> x·t."""
        from repro.forkjoin.line import TaskLine

        line = TaskLine("t")
        line.fork("t", "y")
        assert line.snapshot() == ["y", "t"]
        line.fork("t", "x")
        assert line.snapshot() == ["y", "x", "t"]
        line.join("x", "y")
        assert line.snapshot() == ["x", "t"]

    def test_pipeline_dependence_quote(self):
        """§5: 'A task S_i(x_j) is allowed to depend on any S_k(x_l)
        where k < i or l < j, but otherwise tasks are run in parallel.'
        Checked as: the pipeline's cell order equals exactly that
        relation (reflexive-transitively)."""
        from repro.forkjoin import build_task_graph
        from repro.forkjoin.pipeline import run_pipeline
        from repro.forkjoin.program import write

        def stage_fn(i):
            def stage(item, j):
                yield write(("cell", i, j))

            return stage

        ex = run_pipeline(
            range(3), [stage_fn(i) for i in range(3)], record_events=True
        )
        tg = build_task_graph(ex.events)
        cell = {
            op.loc[1:]: v
            for v, op in tg.ops.items()
            if op.kind == "write"
        }
        for (i1, j1), v1 in cell.items():
            for (i2, j2), v2 in cell.items():
                expected = i1 <= i2 and j1 <= j2
                assert tg.poset.leq(v1, v2) == expected
