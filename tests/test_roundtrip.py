"""Full-circle integration: execution -> graph -> synthesis -> execution.

The deepest consistency check in the repository: take a random
program's execution, reconstruct its operation-level task graph,
synthesize a *new* fork-join execution realising that graph, and verify
the synthesized execution's own task graph is order-isomorphic to the
original -- i.e. `graph -> events -> graph` is the identity up to
isomorphism, with detectors agreeing at both ends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import AccessKind
from repro.detectors import Lattice2DDetector, exact_races
from repro.forkjoin import build_task_graph, run
from repro.forkjoin.replay import replay_events
from repro.forkjoin.synthesis import synthesize_events
from repro.lattice.dominance import Diagram
from repro.workloads.synthetic import SyntheticConfig, random_program


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_execution_graph_synthesis_roundtrip(seed):
    cfg = SyntheticConfig(seed=seed, max_tasks=8, ops_per_task=4,
                          n_locations=3)
    ex = run(random_program(cfg), record_events=True)
    tg = build_task_graph(ex.events)

    # Carry the access annotations over to the graph's vertices.
    accesses = {}
    for v, op in tg.ops.items():
        if op.kind == "read":
            accesses[v] = [(op.loc, AccessKind.READ)]
        elif op.kind == "write":
            accesses[v] = [(op.loc, AccessKind.WRITE)]

    diagram = Diagram.from_poset(tg.poset)
    synth = synthesize_events(diagram, accesses)

    # 1) the synthesized stream is a valid structured execution
    det = Lattice2DDetector()
    replay_events(synth.events, observers=[det])

    # 2) same race verdict at both ends (oracle-level, both directions)
    original_pairs = exact_races(ex.events)
    synth_pairs = exact_races(synth.events)
    assert bool(original_pairs) == bool(synth_pairs) == bool(det.races)

    # 3) the synthesized execution's graph realises the original order
    tg2 = build_task_graph(synth.events)
    for x in tg.graph.vertices():
        for y in tg.graph.vertices():
            if x == y:
                continue
            assert tg.poset.leq(x, y) == tg2.poset.leq(
                synth.step_event_of[x], synth.step_event_of[y]
            ), (seed, x, y)


def test_racing_pair_count_preserved():
    """Not just the boolean: the set of racing (loc, pair) races maps
    across the roundtrip for a concrete example."""
    from repro.forkjoin import fork, join, read, write

    def child(self):
        yield write("x", label="cw")
        yield read("y", label="cr")

    def main(self):
        c = yield fork(child)
        yield write("x", label="mw")   # races with cw
        yield write("y", label="my")   # races with cr
        yield join(c)

    ex = run(main, record_events=True)
    tg = build_task_graph(ex.events)
    accesses = {
        v: [(op.loc, AccessKind.READ if op.kind == "read"
             else AccessKind.WRITE)]
        for v, op in tg.ops.items()
        if op.kind in ("read", "write")
    }
    synth = synthesize_events(Diagram.from_poset(tg.poset), accesses)
    original = {(p.loc, frozenset((p.first, p.second)))
                for p in exact_races(ex.events)}
    inverse = {v: k for k, v in synth.step_event_of.items()}
    mapped = {
        (p.loc, frozenset((inverse[p.first], inverse[p.second])))
        for p in exact_races(synth.events)
    }
    # Pair-for-pair identical under the vertex correspondence.
    assert mapped == original
    assert len(original) == 2
