"""Tests for the task-line timeline (Figure 10 presentation)."""

from __future__ import annotations

import pytest

from repro.forkjoin import fork, join, read, run, step, write
from repro.viz.timeline import LineTracker, render_timeline


def figure2(self):
    def task_a(self2):
        yield read("l", label="A")

    def task_c(self2, a):
        yield join(a)
        yield step(label="C")

    a = yield fork(task_a)
    yield read("l", label="B")
    c = yield fork(task_c, a)
    yield write("l", label="D")
    yield join(c)


class TestLineTracker:
    def test_snapshot_per_transition(self):
        tracker = LineTracker()
        ex = run(figure2, observers=[tracker])
        # root snapshot + one per operation
        assert len(tracker.snapshots) == ex.op_count + 1

    def test_fork_inserts_left(self):
        tracker = LineTracker()
        run(figure2, observers=[tracker])
        desc, line, active = tracker.snapshots[1]
        assert desc == "fork 0->1"
        assert line == [1, 0]
        assert active == 0

    def test_join_removes(self):
        tracker = LineTracker()
        run(figure2, observers=[tracker])
        join_snaps = [s for s in tracker.snapshots if s[0].startswith("join")]
        assert join_snaps[0][1] == [2, 0]  # after c joins a: line 2 . 0
        assert join_snaps[1][1] == [0]     # after main joins c

    def test_final_line_is_root_alone(self):
        tracker = LineTracker()
        run(figure2, observers=[tracker])
        assert tracker.snapshots[-1][1] == [0]


class TestRender:
    def test_render_contains_all_events(self):
        tracker = LineTracker()
        run(figure2, observers=[tracker])
        text = render_timeline(tracker)
        assert "fork 0->1" in text
        assert "write 'l' by 0 (D)" in text
        assert "[0]" in text and "[1]" in text

    def test_active_task_bracketed_per_row(self):
        tracker = LineTracker()
        run(figure2, observers=[tracker])
        for row in render_timeline(tracker).splitlines()[2:]:
            assert "[" in row and "]" in row

    def test_empty_tracker(self):
        assert render_timeline(LineTracker()) == "(no snapshots)"
